"""Tests for the work-unit layer, SQLite broker, and fleet evaluation:
unit planning, lease lifecycle (expiry, bounded retries, stale
completions), worker crash-resume, bit-identical collection, and the
``fleet`` CLI."""

import json
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.eval import fleet
from repro.eval.broker import Broker
from repro.eval.reporting import load_result
from repro.eval.serialize import (
    SCHEMA_VERSION,
    trace_result_from_wire,
    trace_result_to_wire,
)
from repro.eval.spec import build_experiment_spec, run_experiment
from repro.eval.units import (
    CallPlan,
    SingleUnitRecorder,
    WorkUnit,
    assemble_calls,
    plan_calls,
    plan_units,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

PLAN = [CallPlan(labels=("a", "b"), n_traces=3), CallPlan(labels=("a",), n_traces=2)]
UNITS = [
    WorkUnit(0, 0, 2, seeds=(7, 8)),
    WorkUnit(0, 2, 3, seeds=(9,)),
    WorkUnit(1, 0, 2, seeds=(1, 2)),
]
META = {"experiment": "fig2", "preset": "tiny", "seed": None,
        "scheme": None, "overrides": {}}


def make_broker(path, lease_seconds=10.0, max_attempts=3, units=UNITS):
    return Broker.create(
        path, META, PLAN, units,
        lease_seconds=lease_seconds, max_attempts=max_attempts,
    )


class TestUnitModel:
    def test_plan_units_chunks_each_call(self):
        spec = build_experiment_spec("fig2", preset="tiny")
        plan, units = plan_units(spec, unit_traces=3)
        assert [p.n_traces for p in plan] == [4, 4]
        assert [(u.call_index, u.start, u.stop) for u in units] == [
            (0, 0, 3), (0, 3, 4), (1, 0, 3), (1, 3, 4),
        ]
        # Unit seeds are the covered slice of the point's trace seeds.
        seeds = [s for u in units[:2] for s in u.seeds]
        assert len(seeds) == 4 and len(set(seeds)) == 4
        assert plan == plan_calls(spec)

    def test_unit_traces_validation(self):
        spec = build_experiment_spec("fig2", preset="tiny")
        with pytest.raises(ExperimentError, match="unit_traces must be >= 1"):
            plan_units(spec, unit_traces=0)

    def test_work_unit_validation(self):
        with pytest.raises(ExperimentError, match="call_index"):
            WorkUnit(-1, 0, 1)
        with pytest.raises(ExperimentError, match="start < stop"):
            WorkUnit(0, 2, 2)

    def test_single_unit_recorder_rejects_out_of_plan_units(self):
        with pytest.raises(ExperimentError, match="plan has 2 grid call"):
            SingleUnitRecorder(WorkUnit(5, 0, 1), PLAN)
        with pytest.raises(ExperimentError, match="exceeds call"):
            SingleUnitRecorder(WorkUnit(0, 0, 9), PLAN)

    def test_single_unit_recorder_rejects_plan_mismatch(self):
        rec = SingleUnitRecorder(WorkUnit(0, 0, 2), PLAN)
        with pytest.raises(ExperimentError, match="shape mismatch"):
            rec.select_call(["other"], 3)
        rec = SingleUnitRecorder(WorkUnit(0, 0, 2), PLAN)
        rec.select_call(["a", "b"], 3)
        rec.select_call(["a"], 2)
        with pytest.raises(ExperimentError, match="more grid calls"):
            rec.select_call(["a"], 2)

    def test_unit_payload_requires_full_execution(self):
        rec = SingleUnitRecorder(WorkUnit(0, 0, 2), PLAN)
        rec.select_call(["a", "b"], 3)
        rec.record(0, [])
        rec.select_call(["a"], 2)
        with pytest.raises(ExperimentError, match="unit execution incomplete"):
            rec.unit_payload()

    def test_assemble_calls_requires_exact_coverage(self):
        results = [(WorkUnit(0, 0, 2), [[0, []], [1, []]])]
        with pytest.raises(ExperimentError, match="incomplete unit coverage"):
            assemble_calls(PLAN, results)

    def test_assemble_calls_rejects_unknown_call(self):
        with pytest.raises(ExperimentError, match="plan has 2 grid call"):
            assemble_calls(PLAN, [(WorkUnit(7, 0, 1), [[0, []]])])


def sample_trace_result():
    from repro.eval.harness import TraceResult
    from repro.eval.metrics import TraceMetrics
    from repro.types import Prediction

    return TraceResult(
        prediction=Prediction.empty(),
        metrics=TraceMetrics(precision=0.5, recall=0.25),
        build_seconds=0.01,
        inference_seconds=0.02,
        problem=None,
    )


class TestSchemaVersion:
    def test_wire_payloads_carry_version(self):
        wire = trace_result_to_wire(sample_trace_result())
        assert wire["v"] == SCHEMA_VERSION
        assert trace_result_from_wire(json.loads(json.dumps(wire)))

    def test_version_mismatch_rejected(self):
        wire = trace_result_to_wire(sample_trace_result())
        wire["v"] = 999
        with pytest.raises(ExperimentError, match="wire schema v999"):
            trace_result_from_wire(wire)

    def test_missing_version_tolerated(self):
        wire = trace_result_to_wire(sample_trace_result())
        del wire["v"]  # hand-built / pre-versioning payloads still decode
        assert trace_result_from_wire(wire)

    def test_stale_broker_rejected(self, tmp_path):
        path = tmp_path / "b.db"
        make_broker(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(ExperimentError, match="wire schema v999"):
            Broker.open(path)


class TestBroker:
    def test_meta_roundtrip(self, tmp_path):
        path = tmp_path / "b.db"
        with make_broker(path, lease_seconds=5.0, max_attempts=2) as broker:
            assert broker.experiment_meta() == META
            assert broker.plan() == PLAN
            assert broker.lease_seconds == 5.0
            assert broker.max_attempts == 2
        with Broker.open(path) as broker:
            assert broker.counts().pending == 3

    def test_create_refuses_existing_and_invalid(self, tmp_path):
        path = tmp_path / "b.db"
        make_broker(path).close()
        with pytest.raises(ExperimentError, match="already exists"):
            make_broker(path)
        with pytest.raises(ExperimentError, match="no work units"):
            make_broker(tmp_path / "c.db", units=[])
        with pytest.raises(ExperimentError, match="lease_seconds must be > 0"):
            make_broker(tmp_path / "d.db", lease_seconds=0)
        with pytest.raises(ExperimentError, match="max_attempts must be >= 1"):
            make_broker(tmp_path / "e.db", max_attempts=0)

    def test_open_rejects_missing_and_non_broker(self, tmp_path):
        with pytest.raises(ExperimentError, match="does not exist"):
            Broker.open(tmp_path / "nope.db")
        bogus = tmp_path / "bogus.db"
        bogus.write_text("not sqlite at all, definitely not a database")
        with pytest.raises(ExperimentError, match="not a broker database"):
            Broker.open(bogus)

    def test_claim_leases_in_unit_order(self, tmp_path):
        with make_broker(tmp_path / "b.db") as broker:
            first = broker.claim("w0", now=100.0)
            assert first.unit == UNITS[0]
            assert first.attempt == 1
            assert first.lease_expires == 110.0
            assert broker.claim("w0", now=100.0).unit == UNITS[1]
            assert broker.claim("w1", now=100.0).unit == UNITS[2]
            assert broker.claim("w1", now=100.0) is None
            assert broker.counts().leased == 3

    def test_expired_lease_is_reclaimed(self, tmp_path):
        with make_broker(tmp_path / "b.db", lease_seconds=10.0) as broker:
            first = broker.claim("w0", now=100.0)
            # Within the lease the unit is not claimable by anyone else.
            others = [broker.claim("w1", now=105.0) for _ in range(2)]
            assert all(o.unit != first.unit for o in others)
            assert broker.claim("w1", now=105.0) is None
            # Past expiry it goes back to pending and re-leases.
            again = broker.claim("w1", now=111.0)
            assert again.unit == first.unit
            assert again.attempt == 2

    def test_stale_completion_discarded(self, tmp_path):
        with make_broker(tmp_path / "b.db", lease_seconds=10.0) as broker:
            first = broker.claim("w0", now=100.0)
            again = broker.claim("w1", now=111.0)
            assert again.unit_id == first.unit_id
            # The original worker wakes up late: its completion is dropped.
            assert not broker.complete(
                first.unit_id, "w0", {"v": SCHEMA_VERSION, "u": []}, now=112.0
            )
            assert broker.counts().done == 0
            assert broker.complete(
                again.unit_id, "w1", {"v": SCHEMA_VERSION, "u": []}, now=115.0
            )
            assert broker.counts().done == 1
            assert len(broker.results()) == 1

    def test_lease_expiry_attempts_are_bounded(self, tmp_path):
        with make_broker(
            tmp_path / "b.db", lease_seconds=10.0, max_attempts=2
        ) as broker:
            unit_id = broker.claim("w0", now=0.0).unit_id
            assert broker.claim("w1", now=20.0).unit_id == unit_id
            # Second lease also expires; attempts exhausted -> failed.
            later = broker.claim("w2", now=40.0)
            assert later is None or later.unit_id != unit_id
            counts = broker.counts()
            assert counts.failed == 1
            (failed_id, error), = broker.errors()
            assert failed_id == unit_id
            assert "lease expired after 2 attempt" in error

    def test_fail_retries_then_fails_permanently(self, tmp_path):
        with make_broker(tmp_path / "b.db", max_attempts=2) as broker:
            leased = broker.claim("w0", now=0.0)
            assert broker.fail(leased.unit_id, "w0", "boom", now=1.0) == "pending"
            leased = broker.claim("w0", now=2.0)
            assert broker.fail(leased.unit_id, "w0", "boom", now=3.0) == "failed"
            assert broker.counts().failed == 1
            # A worker that lost its lease cannot fail the unit either.
            assert broker.fail(leased.unit_id, "other", "x", now=4.0) is None

    def test_retry_failed_requeues(self, tmp_path):
        with make_broker(tmp_path / "b.db", max_attempts=1) as broker:
            leased = broker.claim("w0", now=0.0)
            assert broker.fail(leased.unit_id, "w0", "boom", now=1.0) == "failed"
            assert broker.counts().failed == 1
            assert broker.retry_failed() == 1
            counts = broker.counts()
            assert counts.failed == 0 and counts.pending == 3
            assert broker.errors() == []
            # The re-queued unit leases again with a fresh attempt budget.
            again = broker.claim("w1", now=2.0)
            assert again.unit_id == leased.unit_id
            assert again.attempt == 1
            # Nothing failed -> nothing to retry; done work is untouched.
            assert broker.retry_failed() == 0
            assert broker.complete(
                again.unit_id, "w1", {"v": SCHEMA_VERSION, "u": []}, now=3.0
            )
            assert broker.retry_failed() == 0
            assert broker.counts().done == 1

    def test_completion_times_ascending(self, tmp_path):
        with make_broker(tmp_path / "b.db") as broker:
            assert broker.completion_times() == []
            stamps = (10.0, 12.5, 11.0)  # finish out of order
            for now in stamps:
                leased = broker.claim("w0", now=now)
                assert broker.complete(
                    leased.unit_id, "w0",
                    {"v": SCHEMA_VERSION, "u": []}, now=now,
                )
            assert broker.completion_times() == sorted(stamps)

    def test_next_lease_expiry(self, tmp_path):
        with make_broker(tmp_path / "b.db", lease_seconds=10.0) as broker:
            assert broker.next_lease_expiry() is None
            broker.claim("w0", now=100.0)
            broker.claim("w0", now=103.0)
            assert broker.next_lease_expiry() == 110.0


class TestFleetEvaluation:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_experiment("fig2", preset="tiny")

    @pytest.mark.parametrize("unit_traces", [1, 3])
    def test_fleet_matches_serial_bit_identical(
        self, tmp_path, serial, unit_traces
    ):
        path = tmp_path / "b.db"
        report = fleet.submit(
            path, "fig2", preset="tiny", unit_traces=unit_traces
        )
        assert report.n_calls == 2
        # Two workers drain the broker cooperatively.
        first = fleet.work(path, worker_id="w0",
                           max_units=report.n_units // 2, wait=False)
        second = fleet.work(path, worker_id="w1", wait=False)
        assert first.completed + second.completed == report.n_units
        result = fleet.collect(path)
        assert result.rows == serial.rows

    def test_submit_refuses_unshardable_and_duplicate(self, tmp_path):
        with pytest.raises(ExperimentError, match="cannot be fleet-evaluated"):
            fleet.submit(tmp_path / "b.db", "table1", preset="tiny")
        fleet.submit(tmp_path / "b.db", "fig2", preset="tiny")
        with pytest.raises(ExperimentError, match="already exists"):
            fleet.submit(tmp_path / "b.db", "fig2", preset="tiny")

    def test_worker_rejects_mismatched_plan(self, tmp_path):
        path = tmp_path / "b.db"
        fleet.submit(path, "fig2", preset="tiny")
        conn = sqlite3.connect(path)
        plan = json.loads(
            conn.execute("SELECT plan FROM experiments WHERE id=1").fetchone()[0]
        )
        plan[0]["n"] += 1  # the submitter's checkout planned a different grid
        conn.execute(
            "UPDATE experiments SET plan=? WHERE id=1", (json.dumps(plan),)
        )
        conn.commit()
        conn.close()
        with pytest.raises(ExperimentError, match="matching checkouts"):
            fleet.work(path, worker_id="w0")

    def test_failing_units_exhaust_retries_and_block_collect(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "b.db"
        fleet.submit(
            path, "fig2", preset="tiny", unit_traces=4, max_attempts=2
        )

        def explode(*args, **kwargs):
            raise ExperimentError("induced unit failure")

        monkeypatch.setattr(fleet, "run_spec", explode)
        report = fleet.work(path, worker_id="w0", wait=False)
        assert report.completed == 0
        state = fleet.status(path)
        assert state["counts"]["failed"] == 2
        assert all("induced unit failure" in err for _, err in state["errors"])
        monkeypatch.undo()
        with pytest.raises(ExperimentError, match="failed permanently"):
            fleet.collect(path)

    def test_collect_refuses_unfinished_fleet(self, tmp_path):
        path = tmp_path / "b.db"
        fleet.submit(path, "fig2", preset="tiny", unit_traces=4)
        with pytest.raises(ExperimentError, match="unfinished fleet"):
            fleet.collect(path)
        fleet.work(path, worker_id="w0", max_units=1, wait=False)
        with pytest.raises(ExperimentError, match="1 leased|pending"):
            fleet.collect(path)

    def test_status_counts(self, tmp_path):
        path = tmp_path / "b.db"
        fleet.submit(path, "fig2", preset="tiny", unit_traces=2)
        assert fleet.status(path)["counts"] == {
            "pending": 4, "leased": 0, "done": 0, "failed": 0,
        }
        fleet.work(path, worker_id="w0", max_units=3, wait=False)
        state = fleet.status(path, detail=True)
        assert state["counts"] == {
            "pending": 1, "leased": 0, "done": 3, "failed": 0,
        }
        assert [row["status"] for row in state["units"]] == [
            "done", "done", "done", "pending",
        ]

    def test_status_progress_and_eta(self, tmp_path):
        path = tmp_path / "b.db"
        fleet.submit(path, "fig2", preset="tiny", unit_traces=2)
        progress = fleet.status(path)["progress"]
        assert progress == {
            "done": 0, "total": 4, "remaining": 4,
            "rate_per_s": None, "eta_s": None,
        }
        fleet.work(path, worker_id="w0", max_units=3, wait=False)
        progress = fleet.status(path)["progress"]
        assert progress["done"] == 3
        assert progress["remaining"] == 1
        if progress["rate_per_s"] is not None:
            assert progress["rate_per_s"] > 0
            assert progress["eta_s"] == pytest.approx(
                1 / progress["rate_per_s"]
            )

    def test_progress_rate_windowed(self):
        from repro.eval.broker import FleetCounts

        counts = FleetCounts(pending=4, leased=2, done=40, failed=0)
        # Older completions (one per 100s) fall outside the window; the
        # last PROGRESS_WINDOW completions arrive one per second.
        times = [float(i) * 100 for i in range(20)]
        times += [2000.0 + i for i in range(fleet.PROGRESS_WINDOW)]
        progress = fleet._progress(counts, times)
        assert progress["remaining"] == 6
        assert progress["rate_per_s"] == pytest.approx(1.0)
        assert progress["eta_s"] == pytest.approx(6.0)
        # A single completion cannot produce a rate.
        single = fleet._progress(counts, [5.0])
        assert single["rate_per_s"] is None and single["eta_s"] is None

    def test_fleet_retry_requeues_failed_units(self, tmp_path):
        path = tmp_path / "b.db"
        fleet.submit(
            path, "fig2", preset="tiny", unit_traces=2, max_attempts=1
        )
        with Broker.open(path) as broker:
            leased = broker.claim("w0")
            assert broker.fail(
                leased.unit_id, "w0", "transient breakage"
            ) == "failed"
        with pytest.raises(ExperimentError, match="failed"):
            fleet.collect(path)
        assert fleet.retry(path) == 1
        assert fleet.retry(path) == 0
        # After the fix, the fleet drains and collects normally.
        fleet.work(path, worker_id="w1", wait=False)
        result = fleet.collect(path)
        assert result is not None

    def test_worker_rejects_nested_shard(self, tmp_path):
        from repro.eval.runner import RunnerConfig
        from repro.eval.shard import ShardRecorder, ShardSpec

        path = tmp_path / "b.db"
        fleet.submit(path, "fig2", preset="tiny")
        nested = RunnerConfig(shard=ShardRecorder(ShardSpec(0, 1)))
        with pytest.raises(ExperimentError, match="cannot nest"):
            fleet.work(path, runner=nested)
        with pytest.raises(ExperimentError, match="cannot nest"):
            fleet.collect(path, runner=nested)


class TestCrashResume:
    """A worker SIGKILLed mid-unit must not lose the fleet: its lease
    expires, a surviving worker re-runs the unit, and the collected
    result is bit-identical to serial."""

    VICTIM = """
import sys, time
from repro.eval import fleet

def stall(leased):
    print(f"claimed {leased.unit_id}", flush=True)
    time.sleep(600)

fleet.work(sys.argv[1], worker_id="victim", on_claim=stall)
"""

    def test_sigkill_mid_unit_resumes_and_matches_serial(self, tmp_path):
        path = tmp_path / "b.db"
        report = fleet.submit(
            path, "fig2", preset="tiny", unit_traces=2, lease_seconds=3.0
        )
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        victim = subprocess.Popen(
            [sys.executable, "-c", self.VICTIM, str(path)],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        try:
            line = victim.stdout.readline()  # blocks until a unit is leased
            assert line.startswith("claimed ")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
        assert fleet.status(path)["counts"]["leased"] == 1
        # The survivor waits out the dead worker's lease and drains all.
        survivor = fleet.work(path, worker_id="survivor")
        assert survivor.completed == report.n_units
        state = fleet.status(path, detail=True)
        assert state["counts"] == {
            "pending": 0, "leased": 0, "done": 4, "failed": 0,
        }
        attempts = {row["id"]: row["attempts"] for row in state["units"]}
        killed = int(line.split()[1])
        assert attempts[killed] == 2  # victim's claim + survivor's re-run
        result = fleet.collect(path)
        serial = run_experiment("fig2", preset="tiny")
        assert result.rows == serial.rows


class TestFleetCli:
    def test_cli_flow_matches_serial(self, tmp_path, capsys):
        broker = str(tmp_path / "b.db")
        out = str(tmp_path / "out.json")
        assert main(["fleet", "submit", broker, "fig2", "--preset", "tiny",
                     "--unit-traces", "2"]) == 0
        assert "4 work unit(s) over 2 grid call(s)" in capsys.readouterr().out
        assert main(["fleet", "status", broker]) == 0
        assert "4 pending" in capsys.readouterr().out
        assert main(["fleet", "work", broker, "--worker-id", "w0",
                     "--max-units", "2", "--no-wait"]) == 0
        assert main(["fleet", "work", broker, "--worker-id", "w1",
                     "--no-wait"]) == 0
        capsys.readouterr()
        assert main(["fleet", "collect", broker, "--out", out]) == 0
        assert "fig2" in capsys.readouterr().out
        serial = run_experiment("fig2", preset="tiny")
        assert load_result(out).rows == serial.rows

    def test_submit_validates_values(self, tmp_path, capsys):
        broker = str(tmp_path / "b.db")
        assert main(["fleet", "submit", broker, "fig2", "--preset", "tiny",
                     "--unit-traces", "0"]) == 2
        assert "unit_traces must be >= 1, got 0" in capsys.readouterr().err
        assert main(["fleet", "submit", broker, "fig2", "--preset", "tiny",
                     "--lease-seconds", "-1"]) == 2
        assert "lease_seconds must be > 0" in capsys.readouterr().err
        assert main(["fleet", "submit", broker, "fig2", "--preset", "tiny",
                     "--max-attempts", "0"]) == 2
        assert "max_attempts must be >= 1, got 0" in capsys.readouterr().err
        assert main(["fleet", "submit", broker, "table1",
                     "--preset", "tiny"]) == 2
        assert "cannot be fleet-evaluated" in capsys.readouterr().err

    def test_work_validates_values(self, tmp_path, capsys):
        broker = str(tmp_path / "b.db")
        assert main(["fleet", "submit", broker, "fig2",
                     "--preset", "tiny"]) == 0
        capsys.readouterr()
        assert main(["fleet", "work", broker, "--max-units", "0"]) == 2
        assert "--max-units must be >= 1, got 0" in capsys.readouterr().err
        assert main(["fleet", "work", broker, "--jobs", "0"]) == 2
        assert "jobs must be >= 1, got 0" in capsys.readouterr().err
        assert main(["fleet", "work", str(tmp_path / "missing.db")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestCliValidation:
    """CLI-boundary validation: bad counts and indices fail with errors
    naming the offending value, never tracebacks."""

    def test_shard_count_and_index_validated(self, capsys):
        assert main(["run", "fig2", "--shards", "0",
                     "--shard-index", "0", "--out", "x.json"]) == 2
        assert "shard count must be >= 1, got 0" in capsys.readouterr().err
        assert main(["run", "fig2", "--shards", "2",
                     "--shard-index", "5", "--out", "x.json"]) == 2
        assert "shard index must be in [0, 2), got 5" in capsys.readouterr().err
        assert main(["run", "fig2", "--shards", "2",
                     "--shard-index", "-1", "--out", "x.json"]) == 2
        assert "shard index must be in [0, 2), got -1" in capsys.readouterr().err

    def test_negative_jobs_validated(self, capsys):
        assert main(["run", "fig2", "--preset", "tiny", "--jobs", "-2"]) == 2
        assert "jobs must be >= 1, got -2" in capsys.readouterr().err

    def test_merge_rejects_duplicate_shard_files(self, tmp_path, capsys):
        shard = tmp_path / "s0.json"
        shard.write_text("{}")
        assert main(["merge", str(shard), str(shard)]) == 2
        err = capsys.readouterr().err
        assert "duplicate shard file" in err and "s0.json" in err
        # The same file under two spellings is still a duplicate.
        alias = tmp_path / "sub" / ".." / "s0.json"
        assert main(["merge", str(shard), str(alias)]) == 2
        assert "duplicate shard file" in capsys.readouterr().err
