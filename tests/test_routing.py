"""Tests for ECMP path enumeration and path interning."""

import pytest

from repro.errors import RoutingError
from repro.routing import EcmpRouting, PathSetTable, PathTable, wcmp_weights
from repro.topology import fat_tree, leaf_spine


class TestEcmpFatTree:
    @pytest.fixture(scope="class")
    def routing(self):
        return EcmpRouting(fat_tree(4))

    def test_same_rack_path(self, routing):
        topo = routing.topology
        tor = topo.racks[0]
        h0, h1 = topo.hosts_in_rack(tor)[:2]
        paths = routing.host_paths(h0, h1)
        assert paths == ((h0, tor, h1),)

    def test_same_pod_paths(self, routing):
        topo = routing.topology
        # Two tors in the same pod share k/2 = 2 agg choices.
        tor_a, tor_b = topo.racks[0], topo.racks[1]
        assert topo.name(tor_a)[:2] == topo.name(tor_b)[:2]
        h_a = topo.hosts_in_rack(tor_a)[0]
        h_b = topo.hosts_in_rack(tor_b)[0]
        paths = routing.host_paths(h_a, h_b)
        assert len(paths) == 2
        for path in paths:
            assert len(path) == 5  # h, tor, agg, tor, h
            assert topo.role(path[2]) == "agg"

    def test_cross_pod_paths(self, routing):
        topo = routing.topology
        pods = {}
        for tor in topo.racks:
            pods.setdefault(topo.name(tor)[:2], []).append(tor)
        pod_list = sorted(pods)
        tor_a = pods[pod_list[0]][0]
        tor_b = pods[pod_list[1]][0]
        h_a = topo.hosts_in_rack(tor_a)[0]
        h_b = topo.hosts_in_rack(tor_b)[0]
        paths = routing.host_paths(h_a, h_b)
        # k=4 fat tree: (k/2)^2 = 4 core paths between pods.
        assert len(paths) == 4
        for path in paths:
            assert len(path) == 7
            assert topo.role(path[3]) == "core"

    def test_paths_are_simple_and_valid(self, routing):
        topo = routing.topology
        paths = routing.host_paths(topo.hosts[0], topo.hosts[-1])
        for path in paths:
            assert len(set(path)) == len(path)
            for u, v in zip(path, path[1:]):
                assert topo.has_link(u, v)

    def test_symmetry(self, routing):
        topo = routing.topology
        fwd = routing.host_paths(topo.hosts[0], topo.hosts[-1])
        rev = routing.host_paths(topo.hosts[-1], topo.hosts[0])
        assert sorted(tuple(reversed(p)) for p in fwd) == sorted(rev)

    def test_probe_paths_reach_core(self, routing):
        topo = routing.topology
        host = topo.hosts[0]
        core = topo.cores[0]
        paths = routing.probe_paths(host, core)
        assert paths
        for path in paths:
            assert path[0] == host
            assert path[-1] == core

    def test_same_host_rejected(self, routing):
        topo = routing.topology
        with pytest.raises(RoutingError):
            routing.host_paths(topo.hosts[0], topo.hosts[0])

    def test_cache_grows(self, routing):
        before = routing.cached_pairs
        topo = routing.topology
        routing.host_paths(topo.hosts[0], topo.hosts[5])
        assert routing.cached_pairs >= before


class TestEcmpLeafSpine:
    def test_cross_rack_uses_all_spines(self):
        topo = leaf_spine(2, 3, 2)
        routing = EcmpRouting(topo)
        h_a = topo.hosts_in_rack(topo.racks[0])[0]
        h_b = topo.hosts_in_rack(topo.racks[1])[0]
        paths = routing.host_paths(h_a, h_b)
        assert len(paths) == 2
        spines = {path[2] for path in paths}
        assert spines == set(topo.cores)


class TestWcmp:
    def test_uniform_weights(self):
        weights = wcmp_weights(((0, 1), (0, 2)))
        assert weights == (0.5, 0.5)

    def test_capacity_weights(self):
        caps = {(0, 1): 40.0, (0, 2): 10.0}
        weights = wcmp_weights(((0, 1), (0, 2)), caps)
        assert weights == (0.8, 0.2)

    def test_missing_capacity(self):
        with pytest.raises(RoutingError):
            wcmp_weights(((0, 1),), {})

    def test_empty_paths(self):
        with pytest.raises(RoutingError):
            wcmp_weights(())


class TestInterning:
    def test_path_table_dedupes_and_sorts(self):
        table = PathTable()
        a = table.intern((3, 1, 2))
        b = table.intern((1, 2, 3))
        assert a == b
        assert table.components(a) == (1, 2, 3)
        assert len(table) == 1

    def test_path_table_distinct(self):
        table = PathTable()
        a = table.intern((1, 2))
        b = table.intern((1, 3))
        assert a != b
        assert len(table) == 2

    def test_pathset_table(self):
        table = PathSetTable()
        a = table.intern((2, 1))
        b = table.intern((1, 2))
        assert a == b
        assert table.paths(a) == (1, 2)
        assert len(table) == 1
