"""Tests for traffic matrices, flow sizes, and probe plans."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.routing import EcmpRouting
from repro.topology import fat_tree
from repro.traffic import (
    FlowSpec,
    SkewedTraffic,
    UniformTraffic,
    a1_probe_plan,
    generate_passive_flows,
    pareto_flow_packets,
    probes_per_link_coverage,
)


class TestUniformTraffic:
    def test_no_self_flows(self, small_fat_tree, rng):
        matrix = UniformTraffic(small_fat_tree)
        pairs = matrix.sample_pairs(500, rng)
        assert len(pairs) == 500
        for src, dst in pairs:
            assert src != dst
            assert src in small_fat_tree.hosts
            assert dst in small_fat_tree.hosts

    def test_spread_over_hosts(self, small_fat_tree, rng):
        matrix = UniformTraffic(small_fat_tree)
        pairs = matrix.sample_pairs(3000, rng)
        sources = {src for src, _ in pairs}
        assert len(sources) == len(small_fat_tree.hosts)


class TestSkewedTraffic:
    def test_concentrates_on_hot_racks(self, small_fat_tree, rng):
        matrix = SkewedTraffic(
            small_fat_tree, rng,
            hot_rack_fraction=0.25, hot_traffic_fraction=0.5,
        )
        hot_hosts = set()
        for rack in matrix.hot_racks:
            hot_hosts.update(small_fat_tree.hosts_in_rack(rack))
        pairs = matrix.sample_pairs(4000, rng)
        hot_flows = sum(
            1 for s, d in pairs if s in hot_hosts and d in hot_hosts
        )
        # ~50% fully-hot flows plus uniform flows that land there anyway.
        assert hot_flows / len(pairs) > 0.4

    def test_no_self_flows(self, small_fat_tree, rng):
        matrix = SkewedTraffic(small_fat_tree, rng)
        for src, dst in matrix.sample_pairs(1000, rng):
            assert src != dst

    def test_invalid_fractions(self, small_fat_tree, rng):
        with pytest.raises(TrafficError):
            SkewedTraffic(small_fat_tree, rng, hot_rack_fraction=0.0)
        with pytest.raises(TrafficError):
            SkewedTraffic(small_fat_tree, rng, hot_traffic_fraction=1.5)


class TestParetoSizes:
    def test_mean_in_ballpark(self, rng):
        packets = pareto_flow_packets(rng, 60_000, mean_bytes=200_000.0)
        mean_bytes = packets.mean() * 1500
        # Heavy tail + clipping: allow a wide band around 200 KB.
        assert 60_000 < mean_bytes < 500_000

    def test_minimum_one_packet(self, rng):
        packets = pareto_flow_packets(rng, 1000, mean_bytes=500.0)
        assert packets.min() >= 1

    def test_clipping(self, rng):
        packets = pareto_flow_packets(rng, 5000, max_packets=50)
        assert packets.max() <= 50

    def test_invalid_shape(self, rng):
        with pytest.raises(TrafficError):
            pareto_flow_packets(rng, 10, shape=1.0)


class TestFlowSpecs:
    def test_spec_validation(self):
        with pytest.raises(TrafficError):
            FlowSpec(src=0, dst=1, packets=0, paths=((0, 1),))
        with pytest.raises(TrafficError):
            FlowSpec(src=0, dst=1, packets=5, paths=())

    def test_generate_passive_flows(self, small_fat_tree, ft_routing, rng):
        matrix = UniformTraffic(small_fat_tree)
        specs = generate_passive_flows(ft_routing, matrix, 200, rng)
        assert len(specs) == 200
        for spec in specs:
            assert spec.paths
            assert not spec.is_probe
            assert spec.paths == ft_routing.host_paths(spec.src, spec.dst)

    def test_fixed_packets(self, small_fat_tree, ft_routing, rng):
        matrix = UniformTraffic(small_fat_tree)
        specs = generate_passive_flows(
            ft_routing, matrix, 50, rng, fixed_packets=7
        )
        assert all(spec.packets == 7 for spec in specs)


class TestProbePlan:
    def test_probes_are_pinned_and_marked(self, small_fat_tree, ft_routing, rng):
        specs = a1_probe_plan(small_fat_tree, ft_routing, 100, rng)
        assert len(specs) == 100
        for spec in specs:
            assert spec.is_probe
            assert len(spec.paths) == 1
            assert spec.dst in small_fat_tree.cores

    def test_full_plan_covers_fabric(self, small_fat_tree, ft_routing, rng):
        n_pairs = len(small_fat_tree.hosts) * len(small_fat_tree.cores)
        specs = a1_probe_plan(
            small_fat_tree, ft_routing, n_pairs * 4, rng
        )
        coverage = probes_per_link_coverage(small_fat_tree, specs)
        assert coverage == 1.0

    def test_rotation_through_ecmp_choices(self, rng):
        # A fat-tree has a single path from a host to a given core, so
        # use a Clos where two aggs reach the same core group: the plan
        # must rotate between the two distinct up-paths.
        from repro.topology import three_tier_clos

        topo = three_tier_clos(
            pods=2, tors_per_pod=2, aggs_per_pod=4,
            core_groups=2, cores_per_group=1, hosts_per_tor=2,
        )
        routing = EcmpRouting(topo)
        host = topo.hosts[0]
        core = topo.cores[0]
        assert len(routing.probe_paths(host, core)) >= 2
        specs = a1_probe_plan(
            topo, routing,
            len(topo.hosts) * len(topo.cores) * 2,
            rng, hosts=None,
        )
        pinned = {
            spec.paths[0]
            for spec in specs
            if spec.src == host and spec.dst == core
        }
        assert len(pinned) >= 2  # rotated through distinct up-paths

    def test_invalid_args(self, small_fat_tree, ft_routing, rng):
        with pytest.raises(TrafficError):
            a1_probe_plan(small_fat_tree, ft_routing, -1, rng)
        with pytest.raises(TrafficError):
            a1_probe_plan(small_fat_tree, ft_routing, 1, rng, packets_per_probe=0)
