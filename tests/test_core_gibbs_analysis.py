"""Tests for Gibbs sampling and the theory/analysis companions."""

import math

import numpy as np
import pytest

from repro.core.analysis import (
    check_theorem2,
    max_recoverable_failures,
    observation_for_score,
    traffic_skew,
    vertex_cover_gadget,
)
from repro.core.flock import FlockInference
from repro.core.gibbs import GibbsInference
from repro.core.model import evidence_score
from repro.core.params import DEFAULT_PER_PACKET, FlockParams
from repro.core.problem import InferenceProblem
from repro.errors import InferenceError
from repro.simulation import SilentLinkDrops
from repro.topology import fat_tree
from repro.types import FlowObservation, FlowRecord
from repro.eval.scenarios import make_trace


class TestGibbs:
    def test_finds_obvious_failure(self):
        observations = [
            FlowObservation(path_set=((0,),), packets_sent=500, bad_packets=30),
            FlowObservation(path_set=((1,),), packets_sent=500, bad_packets=0),
            FlowObservation(path_set=((2,),), packets_sent=500, bad_packets=0),
        ]
        problem = InferenceProblem.from_observations(observations, 3, 3)
        pred = GibbsInference(
            DEFAULT_PER_PACKET, sweeps=20, burn_in=5, seed=1
        ).localize(problem)
        assert pred.components == frozenset({0})
        assert pred.scores[0] > 0.9
        assert pred.scores[1] < 0.1

    def test_recovers_failures_on_trace(self, drop_problem, drop_trace):
        # Gibbs can stick in a mode that swaps a link for its device
        # (the paper's stated reason for preferring greedy: convergence
        # is hard to bound), so assert full recall rather than the exact
        # hypothesis.
        from repro.eval.metrics import evaluate_prediction

        gibbs = GibbsInference(
            DEFAULT_PER_PACKET, sweeps=15, burn_in=5, seed=2
        ).localize(drop_problem)
        metrics = evaluate_prediction(
            gibbs, drop_trace.ground_truth, drop_trace.topology
        )
        assert metrics.recall == 1.0
        assert metrics.precision >= 0.5

    def test_validation(self):
        with pytest.raises(InferenceError):
            GibbsInference(sweeps=5, burn_in=5)
        with pytest.raises(InferenceError):
            GibbsInference(threshold=0.0)

    def test_empty_problem(self):
        problem = InferenceProblem.from_observations([], 4, 4)
        assert GibbsInference().localize(problem).components == frozenset()


class TestTrafficSkew:
    def test_disjoint_flows_zero_skew(self, small_fat_tree):
        topo = small_fat_tree
        h0 = topo.hosts[0]
        records = [
            FlowRecord(src=h0, dst=topo.rack_of(h0), packets_sent=10,
                       bad_packets=0, path=(h0, topo.rack_of(h0)))
        ]
        assert traffic_skew(topo, records) == 0.0

    def test_identical_paths_full_skew(self, small_fat_tree, ft_routing):
        topo = small_fat_tree
        path = ft_routing.host_paths(topo.hosts[0], topo.hosts[-1])[0]
        records = [
            FlowRecord(src=path[0], dst=path[-1], packets_sent=10,
                       bad_packets=0, path=path)
            for _ in range(5)
        ]
        assert traffic_skew(topo, records) == pytest.approx(1.0)

    def test_failure_budget(self):
        assert max_recoverable_failures(0.25) == 2.0
        assert max_recoverable_failures(0.0) == math.inf

    def test_theorem2_report_on_trace(self, small_fat_tree, ft_routing):
        trace = make_trace(
            small_fat_tree, ft_routing, SilentLinkDrops(n_failures=1),
            seed=50, n_passive=800, n_probes=100,
        )
        params = FlockParams(pg=7e-4, pb=6e-3, rho=1e-4)
        report = check_theorem2(
            small_fat_tree,
            trace.records,
            params,
            trace.ground_truth.failed_links,
            trace.ground_truth.drop_rates,
            good_rate_bound=1e-4,
        )
        assert report.hyperparams_ok  # 5*7e-4 < 6e-3 < 0.05
        assert report.eps > 0
        assert report.min_link_packets >= 0


class TestVertexCoverGadget:
    def test_observation_for_score_hits_target(self):
        params = DEFAULT_PER_PACKET
        for target in (2.5, -1.0, 8.0):
            obs = observation_for_score(target, params, (0,))
            s = evidence_score(obs.bad_packets, obs.packets_sent, params)
            assert s == pytest.approx(target, abs=0.5)

    def test_mle_is_vertex_cover(self):
        # Path graph 0-1-2: minimum vertex cover is {1}.
        params = DEFAULT_PER_PACKET
        observations, n = vertex_cover_gadget(
            [(0, 1), (1, 2)], params, cost_scale=1e6, epsilon=0.01
        )
        problem = InferenceProblem.from_observations(observations, n, n)
        pred = FlockInference(params).localize(problem)
        assert pred.components == frozenset({1})

    def test_triangle_needs_two(self):
        params = DEFAULT_PER_PACKET
        observations, n = vertex_cover_gadget(
            [(0, 1), (1, 2), (0, 2)], params, cost_scale=1e6, epsilon=0.01
        )
        problem = InferenceProblem.from_observations(observations, n, n)
        pred = FlockInference(params).localize(problem)
        assert len(pred.components) == 2

    def test_empty_graph_rejected(self):
        with pytest.raises(InferenceError):
            vertex_cover_gadget([], DEFAULT_PER_PACKET)
