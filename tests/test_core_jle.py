"""Correctness of the JLE engine against direct likelihood evaluation.

These are the load-bearing tests of the repository: they pin the
incremental Δ-array bookkeeping (Algorithm 2 / Theorem 1 / Eq. 2) to the
brute-force evaluator, on hand-built and randomly generated problems.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import PARAMS, random_problems
from repro.core.jle import JleState
from repro.core.model import LikelihoodModel
from repro.core.problem import InferenceProblem
from repro.types import FlowObservation


def assert_delta_consistent(state: JleState, model: LikelihoodModel):
    """Every non-member Δ entry must equal LL(H+c) - LL(H) exactly."""
    hyp = set(state.hypothesis)
    base = model.log_likelihood(hyp, include_prior=False)
    for comp in range(state.problem.n_components):
        if comp in hyp:
            continue
        direct = model.log_likelihood(hyp | {comp}, include_prior=False) - base
        assert state.delta[comp] == pytest.approx(direct, abs=1e-8), (
            f"delta[{comp}] diverged for H={sorted(hyp)}"
        )


class TestInitialDelta:
    def test_matches_direct_single_hypotheses(self, drop_problem):
        state = JleState(drop_problem, PARAMS)
        model = LikelihoodModel(drop_problem, PARAMS)
        # Spot-check a sample of components on the real trace problem.
        comps = list(drop_problem.observed_components)[::7]
        for comp in comps:
            direct = model.log_likelihood({comp}, include_prior=False)
            assert state.delta[comp] == pytest.approx(direct, abs=1e-8)

    @given(problem=random_problems())
    @settings(max_examples=60, deadline=None)
    def test_random_problems(self, problem):
        state = JleState(problem, PARAMS)
        model = LikelihoodModel(problem, PARAMS)
        assert_delta_consistent(state, model)


class TestFlip:
    @given(problem=random_problems(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_delta_stays_consistent_over_additions(self, problem, data):
        state = JleState(problem, PARAMS)
        model = LikelihoodModel(problem, PARAMS)
        comps = list(range(problem.n_components))
        for _ in range(3):
            comp = data.draw(st.sampled_from(comps))
            if comp in state.hypothesis:
                continue
            state.flip(comp)
            assert_delta_consistent(state, model)
            assert state.ll == pytest.approx(
                model.log_likelihood(state.hypothesis), abs=1e-8
            )

    @given(problem=random_problems(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_delta_consistent_with_removals(self, problem, data):
        state = JleState(problem, PARAMS)
        model = LikelihoodModel(problem, PARAMS)
        comps = list(range(problem.n_components))
        for _ in range(5):
            comp = data.draw(st.sampled_from(comps))
            state.flip(comp)  # may add or remove
        assert_delta_consistent(state, model)
        assert state.ll == pytest.approx(
            model.log_likelihood(state.hypothesis), abs=1e-8
        )

    @given(problem=random_problems(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_flip_is_involutive(self, problem, data):
        state = JleState(problem, PARAMS)
        comp = data.draw(
            st.integers(min_value=0, max_value=problem.n_components - 1)
        )
        delta_before = state.delta.copy()
        ll_before = state.ll
        change = state.flip(comp)
        change_back = state.flip(comp)
        assert change == pytest.approx(-change_back, abs=1e-9)
        assert state.ll == pytest.approx(ll_before, abs=1e-9)
        np.testing.assert_allclose(state.delta, delta_before, atol=1e-9)
        assert not state.hypothesis

    def test_removal_delta_direct(self, drop_problem):
        state = JleState(drop_problem, PARAMS)
        model = LikelihoodModel(drop_problem, PARAMS)
        comp = drop_problem.observed_components[0]
        state.flip(comp)
        removal = state.removal_delta(comp)
        direct = -model.log_likelihood({comp}, include_prior=False)
        assert removal == pytest.approx(direct, abs=1e-8)

    def test_removal_delta_requires_membership(self, drop_problem):
        state = JleState(drop_problem, PARAMS)
        from repro.errors import InferenceError

        with pytest.raises(InferenceError):
            state.removal_delta(drop_problem.observed_components[0])


class TestBookkeeping:
    def test_flow_b_and_path_counts(self):
        observations = [
            FlowObservation(path_set=((0, 1), (2, 3)), packets_sent=10,
                            bad_packets=1),
        ]
        problem = InferenceProblem.from_observations(observations, 4, 4)
        state = JleState(problem, PARAMS)
        state.flip(0)
        assert state.flow_b[0] == 1
        state.flip(1)  # same path: still one failed path
        assert state.flow_b[0] == 1
        state.flip(2)
        assert state.flow_b[0] == 2
        state.flip(0)
        state.flip(1)
        assert state.flow_b[0] == 1

    def test_hypotheses_scanned_grows(self, drop_problem):
        state = JleState(drop_problem, PARAMS)
        base = state.hypotheses_scanned
        state.flip(drop_problem.observed_components[0])
        assert state.hypotheses_scanned == base + drop_problem.n_components

    def test_gain_includes_prior(self, drop_problem):
        state = JleState(drop_problem, PARAMS)
        comp = drop_problem.observed_components[0]
        assert state.gain(comp) == pytest.approx(
            float(state.delta[comp]) + PARAMS.link_prior_gain
        )
