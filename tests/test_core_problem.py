"""Tests for the InferenceProblem representation."""

import numpy as np
import pytest

from repro.core.problem import InferenceProblem
from repro.errors import InferenceError
from repro.types import FlowObservation, TelemetryKind


def obs(path_set, t, r, kind=TelemetryKind.PASSIVE):
    return FlowObservation(
        path_set=path_set, packets_sent=t, bad_packets=r, kind=kind
    )


class TestConstruction:
    def test_grouping_preserves_totals(self):
        observations = [obs(((0, 1),), 100, 2)] * 5 + [obs(((2,),), 10, 0)] * 3
        problem = InferenceProblem.from_observations(observations, 3, 3)
        assert problem.total_flows == 8
        assert problem.n_flows == 2
        assert sorted(problem.weights.tolist()) == [3, 5]

    def test_different_counts_not_grouped(self):
        observations = [obs(((0,),), 100, 2), obs(((0,),), 100, 3)]
        problem = InferenceProblem.from_observations(observations, 1, 1)
        assert problem.n_flows == 2

    def test_path_interning_shared(self):
        observations = [obs(((0, 1),), 10, 0), obs(((0, 1), (2,)), 10, 0)]
        problem = InferenceProblem.from_observations(observations, 3, 3)
        assert problem.n_paths == 2  # (0,1) interned once

    def test_component_bounds_checked(self):
        with pytest.raises(InferenceError):
            InferenceProblem.from_observations([obs(((7,),), 1, 0)], 3, 3)

    def test_exact_flags(self):
        observations = [obs(((0,),), 1, 0), obs(((0,), (1,)), 1, 0)]
        problem = InferenceProblem.from_observations(observations, 2, 2)
        by_width = {len(problem.flow_paths[i]): bool(problem.exact[i])
                    for i in range(2)}
        assert by_width == {1: True, 2: False}
        assert len(problem.exact_flow_indices()) == 1

    def test_pathset_multiplicity_preserved(self):
        # Two ECMP node-paths mapping to the same component set must
        # keep w=2 (the flow's fan-out matters in Eq. 1).
        observations = [obs(((0, 1), (0, 1)), 10, 1)]
        problem = InferenceProblem.from_observations(observations, 2, 2)
        assert problem.flow_pathset_size(0) == 2
        assert problem.n_paths == 1


class TestIndexes:
    def test_flows_by_comp(self):
        observations = [
            obs(((0, 1),), 10, 0),
            obs(((1, 2),), 10, 0),
            obs(((2,),), 10, 0),
        ]
        problem = InferenceProblem.from_observations(observations, 3, 3)
        assert len(problem.flows_by_comp[1]) == 2
        assert len(problem.flows_by_comp[0]) == 1

    def test_paths_by_comp(self):
        observations = [obs(((0, 1), (1, 2)), 10, 0)]
        problem = InferenceProblem.from_observations(observations, 3, 3)
        assert len(problem.paths_by_comp[1]) == 2
        assert len(problem.paths_by_comp[0]) == 1

    def test_comps_by_flow_union(self):
        observations = [obs(((0, 1), (1, 2)), 10, 0)]
        problem = InferenceProblem.from_observations(observations, 3, 3)
        assert problem.comps_by_flow[0] == (0, 1, 2)

    def test_observed_components(self):
        observations = [obs(((0, 2),), 10, 0)]
        problem = InferenceProblem.from_observations(observations, 5, 5)
        assert problem.observed_components == (0, 2)

    def test_is_device(self):
        problem = InferenceProblem.from_observations(
            [obs(((0, 3),), 1, 0)], n_components=5, n_links=2
        )
        assert not problem.is_device(0)
        assert problem.is_device(3)

    def test_describe_mentions_counts(self):
        problem = InferenceProblem.from_observations(
            [obs(((0,),), 1, 0)], 1, 1
        )
        text = problem.describe()
        assert "flows=1" in text
