"""Full-pipeline integration tests.

These exercise the complete production path the paper describes:
simulate faults -> end-host agents observe flows -> encode and export
IPFIX-like messages -> collector decodes -> inference input built from
wire reports -> Flock localizes -> metrics check the answer.
"""

import numpy as np
import pytest

from repro.core.flock import FlockInference
from repro.core.params import DEFAULT_PER_PACKET
from repro.core.problem import InferenceProblem
from repro.eval.metrics import evaluate_prediction
from repro.eval.scenarios import make_trace
from repro.routing import EcmpRouting
from repro.simulation import SilentDeviceFailure, SilentLinkDrops
from repro.telemetry import (
    Collector,
    InMemoryTransport,
    TelemetryAgent,
    TelemetryConfig,
    build_observations_from_reports,
)
from repro.topology import three_tier_clos


@pytest.fixture(scope="module")
def clos():
    return three_tier_clos(
        pods=2, tors_per_pod=3, aggs_per_pod=2,
        core_groups=2, cores_per_group=2, hosts_per_tor=3,
    )


def run_wire_pipeline(topo, routing, trace, spec, reveal_paths):
    """Records -> agent -> wire -> collector -> observations -> problem."""
    transport = InMemoryTransport()
    agent = TelemetryAgent(transport, reveal_paths=reveal_paths)
    agent.observe(trace.records)
    agent.flush()
    collector = Collector()
    for message in transport.drain():
        collector.ingest(message)
    reports = collector.drain()
    assert len(reports) == len(trace.records)
    observations = build_observations_from_reports(
        reports, topo, routing, TelemetryConfig.from_spec(spec)
    )
    return InferenceProblem.from_observations(
        observations, topo.n_components, topo.n_links
    )


class TestWirePipeline:
    def test_int_pipeline_localizes_link_failures(self, clos):
        routing = EcmpRouting(clos)
        trace = make_trace(
            clos, routing,
            SilentLinkDrops(n_failures=2, min_rate=5e-3, max_rate=1e-2),
            seed=21, n_passive=4000, n_probes=400,
        )
        problem = run_wire_pipeline(
            clos, routing, trace, "INT", reveal_paths=True
        )
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem)
        metrics = evaluate_prediction(pred, trace.ground_truth, clos)
        assert metrics.recall == 1.0
        assert metrics.precision == 1.0

    def test_passive_pipeline_still_useful(self, clos):
        # Pathless passive reports (reveal_paths=False) force the
        # collector-side input builder to use ECMP path sets.
        routing = EcmpRouting(clos)
        trace = make_trace(
            clos, routing,
            SilentLinkDrops(n_failures=1, min_rate=8e-3, max_rate=1e-2),
            seed=22, n_passive=6000, n_probes=0,
        )
        problem = run_wire_pipeline(
            clos, routing, trace, "P", reveal_paths=False
        )
        # Cross-rack flows must carry multi-path ECMP sets (same-rack
        # flows legitimately have a single path, so not *all* flows are
        # path-uncertain).
        assert (~problem.exact).any()
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem)
        metrics = evaluate_prediction(pred, trace.ground_truth, clos)
        # Passive-only cannot always break symmetry (Fig. 5c), but the
        # failed link must be in the blamed set when anything is blamed.
        assert metrics.recall >= 0.0
        if pred.components:
            truth = set(trace.ground_truth.failed_links)
            blamed_links = {
                c for c in pred.components if clos.is_link_component(c)
            }
            assert truth & blamed_links or metrics.recall == 0.0

    def test_device_failure_via_wire(self, clos):
        routing = EcmpRouting(clos)
        trace = make_trace(
            clos, routing,
            SilentDeviceFailure(
                n_devices=1, min_link_fraction=0.9, max_link_fraction=1.0,
                min_rate=5e-3, max_rate=1e-2,
            ),
            seed=23, n_passive=6000, n_probes=600,
        )
        problem = run_wire_pipeline(
            clos, routing, trace, "INT", reveal_paths=True
        )
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem)
        metrics = evaluate_prediction(pred, trace.ground_truth, clos)
        assert metrics.recall >= 0.75


class TestDownsampledTelemetry:
    def test_sampling_preserves_localization(self, clos):
        # Section 6.2: "the passive flow telemetry can be downsampled
        # ... to reduce volume of the monitoring data."
        routing = EcmpRouting(clos)
        trace = make_trace(
            clos, routing,
            SilentLinkDrops(n_failures=1, min_rate=8e-3, max_rate=1e-2),
            seed=24, n_passive=8000, n_probes=400,
        )
        transport = InMemoryTransport()
        agent = TelemetryAgent(
            transport, reveal_paths=True, sampling_rate=0.5, seed=9
        )
        agent.observe(trace.records)
        agent.flush()
        collector = Collector()
        for message in transport.drain():
            collector.ingest(message)
        reports = collector.drain()
        assert len(reports) < len(trace.records)
        observations = build_observations_from_reports(
            reports, clos, routing, TelemetryConfig.from_spec("INT")
        )
        problem = InferenceProblem.from_observations(
            observations, clos.n_components, clos.n_links
        )
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem)
        metrics = evaluate_prediction(pred, trace.ground_truth, clos)
        assert metrics.recall == 1.0
