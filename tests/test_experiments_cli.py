"""Tests for experiment definitions, reporting, and the CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, shardable_experiments
from repro.errors import ExperimentError
from repro.eval.experiments import (
    ExperimentResult,
    fig6_worked_example,
    omit_grid_seeds,
    standard_scheme_suite,
    standard_topology,
)
from repro.eval.reporting import (
    format_table,
    load_result,
    render_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


class TestFig6:
    def test_flock_pinpoints_failed_link(self):
        result = fig6_worked_example()
        by_scheme = {row["scheme"]: row for row in result.rows}
        assert by_scheme["Flock"]["correct_only"]
        assert by_scheme["Flock"]["predicted"] == ["I2<->D2"]
        # 007 votes concentrate on the shared middle link - wrong.
        assert not by_scheme["007"]["correct_only"]


class TestExperimentPlumbing:
    def test_standard_topology_presets(self):
        ci = standard_topology("ci")
        assert ci.n_links < 200
        with pytest.raises(ExperimentError):
            standard_topology("huge")

    def test_scheme_suite_covers_paper_grid(self):
        labels = {s.labeled() for s in standard_scheme_suite()}
        assert "Flock (INT)" in labels
        assert "Flock (A1+A2+P)" in labels
        assert "NetBouncer (INT)" in labels
        assert "007 (A2)" in labels

    def test_omit_grid_seeds_are_index_based(self):
        # The old float-value derivation truncated (int(0.29*100) == 28)
        # and collapsed fraction 0.0 onto the bare experiment seed for
        # both the topology RNG and the trace batch.
        seed = 31
        pairs = [omit_grid_seeds(seed, i) for i in range(8)]
        all_seeds = [s for pair in pairs for s in pair]
        assert len(set(all_seeds)) == len(all_seeds)
        topo0, base0 = pairs[0]
        assert topo0 != seed  # fraction 0.0 no longer reuses the bare seed
        assert base0 == seed  # trace seeds still anchored at the base
        for (topo_seed, base_seed), (_, next_base) in zip(pairs, pairs[1:]):
            # Each grid point owns a disjoint block: trace seeds
            # (base..base+n) and the topology seed stay inside it.
            assert base_seed < topo_seed < next_base

    def test_result_series_filter(self):
        result = ExperimentResult(
            experiment="x", description="",
            rows=[{"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 2, "b": 2}],
        )
        assert len(result.series(a=1)) == 2
        assert result.series(a=2, b=2) == [{"a": 2, "b": 2}]


class TestReporting:
    def test_format_table(self):
        text = format_table([{"x": 1.23456, "ok": True}, {"x": 2, "ok": False}])
        assert "x" in text and "ok" in text
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_render_result_includes_notes(self):
        result = ExperimentResult(
            experiment="demo", description="d", rows=[{"v": 1}],
            notes="paper says so",
        )
        text = render_result(result)
        assert "demo" in text and "paper says so" in text

    def test_result_json_round_trip(self, tmp_path):
        result = ExperimentResult(
            experiment="demo", description="d",
            rows=[{"scheme": "Flock (A2)", "fscore": 1 / 3}],
            notes="n",
        )
        back = result_from_dict(result_to_dict(result))
        assert back == result
        path = save_result(result, tmp_path / "r.json")
        assert load_result(path) == result

    def test_result_json_rejects_wrong_format(self):
        with pytest.raises(ExperimentError):
            result_from_dict({"format": "nope"})

    def test_result_json_rejects_missing_experiment(self):
        with pytest.raises(ExperimentError, match="missing its 'experiment'"):
            result_from_dict({"format": "flock-result-v1"})

    @pytest.mark.parametrize(
        "payload",
        [
            [1, 2],
            {"format": "flock-result-v1", "experiment": "x", "rows": [3]},
            {"format": "flock-result-v1", "experiment": "x", "rows": "oops"},
        ],
    )
    def test_result_json_rejects_malformed_structure(self, payload):
        with pytest.raises(ExperimentError):
            result_from_dict(payload)


class TestCli:
    def test_registry_covers_figures(self):
        for name in ("fig2", "fig3", "fig4a", "fig4c", "fig5", "table1"):
            assert name in EXPERIMENTS

    def test_shardable_experiments(self):
        shardable = shardable_experiments()
        assert "fig2" in shardable and "fig5" in shardable
        # table1's calibration depends on its own results; fig4c and
        # scan-rate are pure timing drivers with no runner parameter.
        for name in ("table1", "fig4c", "scan-rate"):
            assert name not in shardable

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig6" in out

    def test_run_fig6(self, capsys):
        assert main(["run", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "Flock" in out

    def test_parser_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99"])
