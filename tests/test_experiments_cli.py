"""Tests for the registries (schemes, scenarios, experiments),
reporting, and the CLI."""

import pytest

from repro.cli import build_parser, main, parse_overrides
from repro.errors import ExperimentError, SimulationError
from repro.eval.experiments import (
    fig6_worked_example,
    omit_grid_seeds,
    standard_scheme_suite,
    standard_topology,
)
from repro.eval.reporting import (
    format_table,
    load_result,
    render_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.eval.schemes import (
    build_localizer,
    get_scheme,
    make_setup,
    scheme_names,
)
from repro.eval.spec import (
    ExperimentResult,
    build_experiment_spec,
    default_experiment_names,
    experiment_names,
    get_experiment,
    register_experiment,
    shardable_experiment_names,
)
from repro.simulation.failures import (
    LinkFlap,
    SilentLinkDrops,
    make_scenario,
    scenario_names,
)


class TestFig6:
    def test_flock_pinpoints_failed_link(self):
        result = fig6_worked_example()
        by_scheme = {row["scheme"]: row for row in result.rows}
        assert by_scheme["Flock"]["correct_only"]
        assert by_scheme["Flock"]["predicted"] == ["I2<->D2"]
        # 007 votes concentrate on the shared middle link - wrong.
        assert not by_scheme["007"]["correct_only"]

    def test_fig6_is_registered(self):
        # The worked example is a first-class registry experiment, not
        # a CLI special case.
        assert "fig6" in experiment_names()
        assert not get_experiment("fig6").shardable


class TestSchemeRegistry:
    def test_registry_covers_paper_schemes(self):
        names = scheme_names()
        for name in (
            "flock", "flock-greedy", "sherlock", "sherlock-jle",
            "netbouncer", "007",
        ):
            assert name in names

    def test_build_localizer_applies_defaults_and_overrides(self):
        flock = build_localizer("flock")
        assert flock.params.pg == get_scheme("flock").defaults["pg"]
        custom = build_localizer("flock", pg=1e-4, pb=2e-3, rho=1e-3)
        assert custom.params.rho == 1e-3

    def test_make_setup_uses_default_spec(self):
        setup = make_setup("netbouncer")
        assert setup.labeled() == "NetBouncer (INT)"
        setup = make_setup("007", spec="A2")
        assert setup.labeled() == "007 (A2)"

    def test_make_setup_label_override(self):
        setup = make_setup("flock", spec="A2", label="Flock custom")
        assert setup.labeled() == "Flock custom (A2)"

    def test_unknown_scheme(self):
        with pytest.raises(ExperimentError, match="unknown scheme"):
            build_localizer("nope")

    def test_bad_parameters_fail_loudly(self):
        with pytest.raises(ExperimentError, match="cannot construct"):
            build_localizer("007", bogus_knob=1)

    def test_greedy_only_engines_agree(self, drop_problem):
        fast = build_localizer("flock-greedy", engine="fast")
        ref = build_localizer("flock-greedy", engine="reference")
        assert fast.localize(drop_problem).components == \
            ref.localize(drop_problem).components


class TestScenarioRegistry:
    def test_registry_covers_paper_scenarios(self):
        names = scenario_names()
        for name in (
            "silent-link-drops", "silent-device-failure",
            "queue-misconfig", "link-flap", "no-failure",
        ):
            assert name in names

    def test_make_scenario_parameterized(self):
        scenario = make_scenario("silent-link-drops", n_failures=3)
        assert scenario == SilentLinkDrops(n_failures=3)
        assert isinstance(make_scenario("link-flap"), LinkFlap)

    def test_unknown_scenario(self):
        with pytest.raises(SimulationError, match="unknown scenario"):
            make_scenario("meteor-strike")

    def test_bad_parameters_fail_loudly(self):
        with pytest.raises(SimulationError, match="cannot construct"):
            make_scenario("link-flap", n_devices=2)


class TestExperimentRegistry:
    def test_registry_covers_figures(self):
        names = experiment_names()
        for name in (
            "fig2", "fig3", "fig4a", "fig4c", "fig5", "fig6",
            "table1", "table1-calibrate", "table1-eval", "scan-rate",
        ):
            assert name in names

    def test_shardable_experiments(self):
        shardable = shardable_experiment_names()
        assert "fig2" in shardable and "fig5" in shardable
        # table1's eval phase shards through the two-phase split.
        assert "table1-calibrate" in shardable
        assert "table1-eval" in shardable
        # The combined table1's build-time calibration would repeat per
        # worker; fig4c, scan-rate, and fig6 are probe-only.
        for name in ("table1", "fig4c", "scan-rate", "fig6"):
            assert name not in shardable

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("fig99")

    def test_table1_phases_excluded_from_run_all(self):
        # The combined table1 covers both phases; listing the phases in
        # 'run all' would redo the calibrate-grid sweep twice more.
        names = default_experiment_names()
        assert "table1" in names
        assert "table1-calibrate" not in names
        assert "table1-eval" not in names

    def test_user_registration_does_not_mask_builtins(self):
        # Registering in this process must coexist with the built-ins.
        try:
            register_experiment("user-exp", description="test entry")(
                lambda preset, seed, ov: None
            )
            assert "fig2" in experiment_names()
            assert "user-exp" in experiment_names()
        finally:
            from repro.eval import spec as spec_module

            spec_module._EXPERIMENTS.pop("user-exp", None)

    def test_user_registration_before_builtin_load(self):
        # In a fresh interpreter, a user registration made *before* the
        # first registry access must not stop the built-in experiments
        # and topologies from loading (the lazy-load guard is a flag,
        # not dict emptiness).
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "from repro.eval.spec import register_experiment, "
            "experiment_names, resolve_topology\n"
            "register_experiment('mine', description='x')("
            "lambda preset, seed, ov: None)\n"
            "names = experiment_names()\n"
            "assert 'fig2' in names and 'mine' in names, names\n"
            "assert resolve_topology('fat-tree', k=4).n_links > 0\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": str(src)},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_unknown_override_fails_loudly(self):
        with pytest.raises(ExperimentError, match="does not support overrides"):
            build_experiment_spec("fig2", preset="tiny", overrides={"bogus": 1})

    def test_scheme_restriction_filters_suite(self):
        spec = build_experiment_spec("fig2", preset="tiny", scheme="netbouncer")
        refs = [ref for point in spec.points for ref in point.schemes]
        assert refs and all(ref.scheme == "netbouncer" for ref in refs)

    def test_scheme_restriction_injects_unlisted_scheme(self):
        # fig2's paper grid has no Sherlock column; --scheme sherlock
        # still evaluates it on fig2's workload at registry defaults.
        spec = build_experiment_spec("fig2", preset="tiny", scheme="sherlock")
        refs = [ref for point in spec.points for ref in point.schemes]
        assert refs and all(ref.scheme == "sherlock" for ref in refs)

    def test_override_changes_spec(self):
        spec = build_experiment_spec(
            "fig2", preset="tiny", overrides={"n_traces": 2}
        )
        assert all(len(point.trace.seeds) == 2 for point in spec.points)


class TestExperimentPlumbing:
    def test_standard_topology_presets(self):
        tiny = standard_topology("tiny")
        ci = standard_topology("ci")
        assert tiny.n_links < ci.n_links < 200
        with pytest.raises(ExperimentError):
            standard_topology("huge")

    def test_scheme_suite_covers_paper_grid(self):
        labels = {s.labeled() for s in standard_scheme_suite()}
        assert "Flock (INT)" in labels
        assert "Flock (A1+A2+P)" in labels
        assert "NetBouncer (INT)" in labels
        assert "007 (A2)" in labels

    def test_omit_grid_seeds_are_index_based(self):
        # The old float-value derivation truncated (int(0.29*100) == 28)
        # and collapsed fraction 0.0 onto the bare experiment seed for
        # both the topology RNG and the trace batch.
        seed = 31
        pairs = [omit_grid_seeds(seed, i) for i in range(8)]
        all_seeds = [s for pair in pairs for s in pair]
        assert len(set(all_seeds)) == len(all_seeds)
        topo0, base0 = pairs[0]
        assert topo0 != seed  # fraction 0.0 no longer reuses the bare seed
        assert base0 == seed  # trace seeds still anchored at the base
        for (topo_seed, base_seed), (_, next_base) in zip(pairs, pairs[1:]):
            # Each grid point owns a disjoint block: trace seeds
            # (base..base+n) and the topology seed stay inside it.
            assert base_seed < topo_seed < next_base

    def test_result_series_filter(self):
        result = ExperimentResult(
            experiment="x", description="",
            rows=[{"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 2, "b": 2}],
        )
        assert len(result.series(a=1)) == 2
        assert result.series(a=2, b=2) == [{"a": 2, "b": 2}]


class TestReporting:
    def test_format_table(self):
        text = format_table([{"x": 1.23456, "ok": True}, {"x": 2, "ok": False}])
        assert "x" in text and "ok" in text
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_render_result_includes_notes(self):
        result = ExperimentResult(
            experiment="demo", description="d", rows=[{"v": 1}],
            notes="paper says so",
        )
        text = render_result(result)
        assert "demo" in text and "paper says so" in text

    def test_result_json_round_trip(self, tmp_path):
        result = ExperimentResult(
            experiment="demo", description="d",
            rows=[{"scheme": "Flock (A2)", "fscore": 1 / 3}],
            notes="n",
        )
        back = result_from_dict(result_to_dict(result))
        assert back == result
        path = save_result(result, tmp_path / "r.json")
        assert load_result(path) == result

    def test_result_json_rejects_wrong_format(self):
        with pytest.raises(ExperimentError):
            result_from_dict({"format": "nope"})

    def test_result_json_rejects_missing_experiment(self):
        with pytest.raises(ExperimentError, match="missing its 'experiment'"):
            result_from_dict({"format": "flock-result-v1"})

    @pytest.mark.parametrize(
        "payload",
        [
            [1, 2],
            {"format": "flock-result-v1", "experiment": "x", "rows": [3]},
            {"format": "flock-result-v1", "experiment": "x", "rows": "oops"},
        ],
    )
    def test_result_json_rejects_malformed_structure(self, payload):
        with pytest.raises(ExperimentError):
            result_from_dict(payload)


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig6" in out
        assert "flock" in out and "netbouncer" in out
        assert "silent-link-drops" in out and "link-flap" in out

    def test_list_sections(self, capsys):
        assert main(["list", "--schemes"]) == 0
        out = capsys.readouterr().out
        assert "schemes:" in out
        assert "experiments:" not in out and "scenarios:" not in out

    def test_run_fig6(self, capsys):
        assert main(["run", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "Flock" in out

    def test_run_rejects_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_rejects_unknown_scheme(self, capsys):
        assert main(["run", "fig6", "--scheme", "nope"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_run_rejects_unknown_override(self, capsys):
        assert main(["run", "fig6", "--set", "bogus=1"]) == 2
        assert "does not support overrides" in capsys.readouterr().err

    def test_run_all_rejects_per_experiment_flags(self, capsys):
        # --scheme/--set/--shards validate against a single builder;
        # with 'all' they would die partway through with partial output.
        assert main(["run", "all", "--scheme", "flock"]) == 2
        assert "single experiment" in capsys.readouterr().err
        assert main(["run", "all", "--set", "n_traces=4"]) == 2
        assert "single experiment" in capsys.readouterr().err
        assert main(["run", "all", "--shards", "2"]) == 2
        assert "single experiment" in capsys.readouterr().err

    def test_parse_overrides(self):
        parsed = parse_overrides(
            ["n_traces=4", "fractions=[0.0, 0.1]", "calibration=cal.json"]
        )
        assert parsed == {
            "n_traces": 4,
            "fractions": [0.0, 0.1],
            "calibration": "cal.json",
        }

    def test_parse_overrides_rejects_bare_key(self):
        with pytest.raises(ExperimentError, match="KEY=VAL"):
            parse_overrides(["n_traces"])

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])
