"""Tests for experiment definitions, reporting, and the CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.errors import ExperimentError
from repro.eval.experiments import (
    ExperimentResult,
    fig6_worked_example,
    standard_scheme_suite,
    standard_topology,
)
from repro.eval.reporting import format_table, render_result


class TestFig6:
    def test_flock_pinpoints_failed_link(self):
        result = fig6_worked_example()
        by_scheme = {row["scheme"]: row for row in result.rows}
        assert by_scheme["Flock"]["correct_only"]
        assert by_scheme["Flock"]["predicted"] == ["I2<->D2"]
        # 007 votes concentrate on the shared middle link - wrong.
        assert not by_scheme["007"]["correct_only"]


class TestExperimentPlumbing:
    def test_standard_topology_presets(self):
        ci = standard_topology("ci")
        assert ci.n_links < 200
        with pytest.raises(ExperimentError):
            standard_topology("huge")

    def test_scheme_suite_covers_paper_grid(self):
        labels = {s.labeled() for s in standard_scheme_suite()}
        assert "Flock (INT)" in labels
        assert "Flock (A1+A2+P)" in labels
        assert "NetBouncer (INT)" in labels
        assert "007 (A2)" in labels

    def test_result_series_filter(self):
        result = ExperimentResult(
            experiment="x", description="",
            rows=[{"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 2, "b": 2}],
        )
        assert len(result.series(a=1)) == 2
        assert result.series(a=2, b=2) == [{"a": 2, "b": 2}]


class TestReporting:
    def test_format_table(self):
        text = format_table([{"x": 1.23456, "ok": True}, {"x": 2, "ok": False}])
        assert "x" in text and "ok" in text
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_render_result_includes_notes(self):
        result = ExperimentResult(
            experiment="demo", description="d", rows=[{"v": 1}],
            notes="paper says so",
        )
        text = render_result(result)
        assert "demo" in text and "paper says so" in text


class TestCli:
    def test_registry_covers_figures(self):
        for name in ("fig2", "fig3", "fig4a", "fig4c", "fig5", "table1"):
            assert name in EXPERIMENTS

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig6" in out

    def test_run_fig6(self, capsys):
        assert main(["run", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "Flock" in out

    def test_parser_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99"])
