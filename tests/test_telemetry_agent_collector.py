"""Agent -> transport -> collector pipeline tests (incl. UDP loopback)."""

import time

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    Collector,
    InMemoryTransport,
    TelemetryAgent,
    UdpCollectorServer,
    UdpTransport,
    encode_message,
)
from repro.telemetry.records import FlowReport
from repro.types import FlowRecord


def make_records(n, bad_every=5):
    records = []
    for i in range(n):
        records.append(
            FlowRecord(
                src=i, dst=i + 1000, packets_sent=100,
                bad_packets=1 if i % bad_every == 0 else 0,
                path=(i, 50_000, i + 1000), rtt_ms=0.3,
                is_probe=(i % 7 == 0),
            )
        )
    return records


class TestAgent:
    def test_exports_everything_in_batches(self):
        transport = InMemoryTransport()
        agent = TelemetryAgent(transport, batch_size=10)
        agent.observe(make_records(25))
        agent.flush()
        assert agent.exported_reports == 25
        assert agent.exported_messages == 3
        collector = Collector()
        for message in transport.drain():
            collector.ingest(message)
        assert collector.pending_reports == 25

    def test_sampling_drops_passive_keeps_probes(self):
        transport = InMemoryTransport()
        agent = TelemetryAgent(transport, sampling_rate=0.2, seed=3)
        records = make_records(700)
        n_probes = sum(1 for r in records if r.is_probe)
        agent.observe(records)
        agent.flush()
        collector = Collector()
        for message in transport.drain():
            collector.ingest(message)
        reports = collector.drain()
        probes = [r for r in reports if r.is_probe]
        assert len(probes) == n_probes
        passive = len(reports) - len(probes)
        assert passive < (700 - n_probes) * 0.4
        assert agent.sampled_out == 700 - len(reports)

    def test_reveal_paths_flag(self):
        transport = InMemoryTransport()
        agent = TelemetryAgent(transport, reveal_paths=False)
        agent.observe(make_records(10))
        agent.flush()
        collector = Collector()
        for message in transport.drain():
            collector.ingest(message)
        for report in collector.drain():
            if report.is_probe:
                assert report.path is not None  # probes always traced
            else:
                assert report.path is None

    def test_invalid_config(self):
        with pytest.raises(TelemetryError):
            TelemetryAgent(InMemoryTransport(), sampling_rate=0.0)
        with pytest.raises(TelemetryError):
            TelemetryAgent(InMemoryTransport(), batch_size=0)


class TestCollector:
    def test_rejects_garbage_and_survives(self):
        collector = Collector()
        assert collector.ingest(b"not a message") == 0
        assert collector.messages_rejected == 1
        good = encode_message(
            [FlowReport(src=1, dst=2, packets_sent=3, retransmissions=0,
                        rtt_us=5)]
        )
        assert collector.ingest(good) == 1
        assert collector.messages_ingested == 1

    def test_drain_clears(self):
        collector = Collector()
        good = encode_message(
            [FlowReport(src=1, dst=2, packets_sent=3, retransmissions=0,
                        rtt_us=5)]
        )
        collector.ingest(good)
        assert len(collector.drain()) == 1
        assert collector.pending_reports == 0


class TestUdpLoopback:
    def test_end_to_end_over_udp(self):
        collector = Collector()
        with UdpCollectorServer(collector) as server:
            host, port = server.address
            transport = UdpTransport(host, port)
            agent = TelemetryAgent(transport, reveal_paths=True)
            agent.observe(make_records(120))
            agent.flush()
            transport.close()
            deadline = time.time() + 5.0
            while collector.pending_reports < 120 and time.time() < deadline:
                time.sleep(0.01)
        assert collector.pending_reports == 120
        reports = collector.drain()
        assert all(r.path is not None for r in reports)

    def test_server_restart_guard(self):
        collector = Collector()
        server = UdpCollectorServer(collector)
        server.start()
        with pytest.raises(TelemetryError):
            server.start()
        server.stop()
