"""Tests for irregular-Clos degradation (link omission)."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import fat_tree, omit_random_links


class TestOmitRandomLinks:
    def test_zero_fraction_is_identity(self, rng):
        topo = fat_tree(4)
        degraded, removed = omit_random_links(topo, 0.0, rng)
        assert degraded is topo
        assert removed == ()

    def test_removes_requested_fraction(self, rng):
        topo = fat_tree(4)
        fabric_before = len(topo.switch_switch_links())
        degraded, removed = omit_random_links(topo, 0.2, rng)
        expected = int(round(0.2 * fabric_before))
        assert len(removed) == expected
        assert degraded.n_links == topo.n_links - expected

    def test_never_removes_host_links(self, rng):
        topo = fat_tree(4)
        _, removed = omit_random_links(topo, 0.25, rng)
        for u, v in removed:
            assert topo.role(u) != "host"
            assert topo.role(v) != "host"

    def test_stays_connected(self):
        topo = fat_tree(4)
        for seed in range(5):
            degraded, _ = omit_random_links(
                topo, 0.2, np.random.default_rng(seed)
            )
            assert degraded.is_connected()

    def test_racks_keep_uplinks(self, rng):
        topo = fat_tree(4)
        degraded, _ = omit_random_links(topo, 0.25, rng)
        for rack in degraded.racks:
            uplinks = [
                n for n, _ in degraded.neighbors(rack)
                if degraded.role(n) != "host"
            ]
            assert uplinks

    def test_invalid_fraction(self, rng):
        topo = fat_tree(4)
        with pytest.raises(TopologyError):
            omit_random_links(topo, 1.0, rng)
        with pytest.raises(TopologyError):
            omit_random_links(topo, -0.1, rng)

    def test_host_count_preserved(self, rng):
        topo = fat_tree(4)
        degraded, _ = omit_random_links(topo, 0.15, rng)
        assert degraded.hosts == topo.hosts
