"""Tests for the 007 voting baseline."""

import pytest

from repro.baselines.b007 import Vote007
from repro.core.problem import InferenceProblem
from repro.errors import InferenceError
from repro.types import FlowObservation


def problem_from(observations, n_components=10, n_links=10):
    return InferenceProblem.from_observations(
        observations, n_components, n_links
    )


class TestVoting:
    def test_hand_computed_votes(self):
        # Flow A (bad) over links {0,1,2}: 1/3 each.
        # Flow B (bad) over links {1,2}:   1/2 each.
        # Flow C (clean) over {3}:          no votes.
        observations = [
            FlowObservation(((0, 1, 2),), 100, 1),
            FlowObservation(((1, 2),), 100, 2),
            FlowObservation(((3,),), 100, 0),
        ]
        pred = Vote007(threshold=0.5).localize(problem_from(observations))
        votes = pred.scores
        assert votes[0] == pytest.approx(1 / 3)
        assert votes[1] == pytest.approx(1 / 3 + 1 / 2)
        assert votes[2] == pytest.approx(1 / 3 + 1 / 2)
        assert 3 not in votes

    def test_threshold_selects_top(self):
        observations = [
            FlowObservation(((0,),), 10, 1),
            FlowObservation(((0,),), 10, 1),
            FlowObservation(((1,),), 10, 1),
        ]
        strict = Vote007(threshold=0.9).localize(problem_from(observations))
        assert strict.components == frozenset({0})
        loose = Vote007(threshold=0.4).localize(problem_from(observations))
        assert loose.components == frozenset({0, 1})

    def test_grouped_flows_weighted(self):
        # Five identical bad flows group to weight 5: votes scale.
        observations = [FlowObservation(((0, 1),), 10, 1)] * 5
        pred = Vote007(threshold=0.5).localize(problem_from(observations))
        assert pred.scores[0] == pytest.approx(2.5)

    def test_ignores_pathset_flows(self):
        # 007 cannot ingest path-uncertain flows.
        observations = [
            FlowObservation(((0,), (1,)), 10, 5),
        ]
        pred = Vote007().localize(problem_from(observations))
        assert pred.components == frozenset()

    def test_ignores_devices(self):
        # Component 9 is a device (n_links=9 < 10): no votes for it.
        observations = [FlowObservation(((0, 9),), 10, 1)]
        pred = Vote007(threshold=0.1).localize(
            problem_from(observations, n_components=10, n_links=9)
        )
        assert 9 not in pred.components
        assert 0 in pred.components

    def test_clean_network_empty(self):
        observations = [FlowObservation(((0, 1),), 100, 0)] * 10
        pred = Vote007().localize(problem_from(observations))
        assert pred.components == frozenset()

    def test_invalid_threshold(self):
        with pytest.raises(InferenceError):
            Vote007(threshold=0.0)
        with pytest.raises(InferenceError):
            Vote007(threshold=1.5)
