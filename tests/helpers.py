"""Shared test utilities: the reference parameters and the random
problem generator used by the JLE, engine-equivalence, and Sherlock
suites.

Kept outside conftest.py because these are plain importables (a
hypothesis strategy and constants), not fixtures; test modules import
them absolutely (``from helpers import ...``) so collection works
without turning ``tests/`` into a package.
"""

from hypothesis import strategies as st

from repro.core.params import FlockParams
from repro.core.problem import InferenceProblem
from repro.types import FlowObservation

PARAMS = FlockParams(pg=7e-4, pb=6e-3, rho=1e-4)
N_COMPS = 10


@st.composite
def random_problems(draw):
    """Small random inference problems over N_COMPS components."""
    n_flows = draw(st.integers(min_value=1, max_value=12))
    observations = []
    for _ in range(n_flows):
        n_paths = draw(st.integers(min_value=1, max_value=3))
        path_set = []
        for _ in range(n_paths):
            size = draw(st.integers(min_value=1, max_value=4))
            comps = draw(
                st.lists(
                    st.integers(min_value=0, max_value=N_COMPS - 1),
                    min_size=size, max_size=size, unique=True,
                )
            )
            path_set.append(tuple(sorted(comps)))
        t = draw(st.integers(min_value=1, max_value=200))
        r = draw(st.integers(min_value=0, max_value=min(t, 8)))
        observations.append(
            FlowObservation(
                path_set=tuple(path_set), packets_sent=t, bad_packets=r
            )
        )
    return InferenceProblem.from_observations(
        observations, n_components=N_COMPS, n_links=N_COMPS
    )
