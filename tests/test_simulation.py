"""Tests for drop-rate plans, failure scenarios, and the flow simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.routing import EcmpRouting
from repro.simulation import (
    DropRatePlan,
    FlowLevelSimulator,
    LinkFlap,
    NoFailure,
    QueueMisconfig,
    SilentDeviceFailure,
    SilentLinkDrops,
    empirical_link_loss,
    fail_links,
    good_link_rates,
)
from repro.simulation.failures import PER_FLOW, PER_PACKET
from repro.topology import fat_tree
from repro.traffic import FlowSpec, UniformTraffic, generate_passive_flows


class TestDropRatePlan:
    def test_validation(self, small_fat_tree):
        with pytest.raises(SimulationError):
            DropRatePlan(small_fat_tree, np.zeros(3))
        with pytest.raises(SimulationError):
            DropRatePlan(
                small_fat_tree, np.full(small_fat_tree.n_links, 1.5)
            )

    def test_good_rates_bounded(self, small_fat_tree, rng):
        plan = good_link_rates(small_fat_tree, rng, max_rate=1e-4)
        assert plan.rates.max() <= 1e-4
        assert plan.rates.min() >= 0.0

    def test_fail_links_overrides(self, small_fat_tree, rng):
        plan = good_link_rates(small_fat_tree, rng)
        failed = [0, 5]
        plan2 = fail_links(plan, failed, rng, 1e-3, 1e-2)
        for link in failed:
            assert 1e-3 <= plan2.rate(link) <= 1e-2
        # Other links untouched.
        assert plan2.rate(1) == plan.rate(1)

    def test_path_drop_probability(self, small_fat_tree):
        rates = np.zeros(small_fat_tree.n_links)
        u, v = small_fat_tree.endpoints(0)
        rates[0] = 0.5
        plan = DropRatePlan(small_fat_tree, rates)
        assert plan.path_drop_probability((u, v)) == pytest.approx(0.5)
        # Bounce path crosses the link twice: 1 - 0.25.
        assert plan.path_drop_probability((u, v, u)) == pytest.approx(0.75)

    def test_rates_read_only(self, small_fat_tree, rng):
        plan = good_link_rates(small_fat_tree, rng)
        with pytest.raises(ValueError):
            plan.rates[0] = 0.9


class TestScenarios:
    def test_silent_link_drops(self, small_fat_tree, rng):
        injection = SilentLinkDrops(n_failures=3).inject(small_fat_tree, rng)
        truth = injection.ground_truth
        assert len(truth.failed_links) == 3
        fabric = set(small_fat_tree.switch_switch_links())
        for link in truth.failed_links:
            assert link in fabric
            assert 1e-3 <= injection.plan.rate(link) <= 1e-2
        assert injection.analysis == PER_PACKET

    def test_device_failure(self, small_fat_tree, rng):
        injection = SilentDeviceFailure(n_devices=2).inject(small_fat_tree, rng)
        truth = injection.ground_truth
        assert len(truth.failed_devices) == 2
        assert not truth.failed_links
        # The affected links got elevated rates.
        assert truth.drop_rates
        for link, rate in truth.drop_rates.items():
            assert rate >= 1e-3

    def test_device_failure_fraction_bounds(self, small_fat_tree):
        scenario = SilentDeviceFailure(
            n_devices=1, min_link_fraction=1.0, max_link_fraction=1.0
        )
        injection = scenario.inject(small_fat_tree, np.random.default_rng(0))
        device = next(iter(injection.ground_truth.failed_devices))
        node = small_fat_tree.component_device(device)
        assert set(injection.ground_truth.drop_rates) == set(
            small_fat_tree.device_links(node)
        )

    def test_queue_misconfig_effective_rate(self, small_fat_tree, rng):
        scenario = QueueMisconfig(n_links=1, utilization=0.6)
        injection = scenario.inject(small_fat_tree, rng)
        link = next(iter(injection.ground_truth.failed_links))
        assert injection.plan.rate(link) == pytest.approx(0.01 * 0.6)

    def test_link_flap(self, small_fat_tree, rng):
        injection = LinkFlap(n_links=1).inject(small_fat_tree, rng)
        assert injection.analysis == PER_FLOW
        assert injection.flapped_links == injection.ground_truth.failed_links
        assert injection.latency_model is not None
        # No drop-rate elevation on flapped links.
        for link in injection.flapped_links:
            assert injection.plan.rate(link) <= 1e-4

    def test_no_failure(self, small_fat_tree, rng):
        injection = NoFailure().inject(small_fat_tree, rng)
        assert not injection.ground_truth.has_failures

    def test_too_many_failures(self, small_fat_tree, rng):
        n_fabric = len(small_fat_tree.switch_switch_links())
        with pytest.raises(SimulationError):
            SilentLinkDrops(n_failures=n_fabric + 1).inject(small_fat_tree, rng)


class TestFlowSimulator:
    def test_zero_rates_no_drops(self, small_fat_tree, ft_routing, rng):
        injection = NoFailure().inject(small_fat_tree, rng)
        zero_plan = DropRatePlan(
            small_fat_tree, np.zeros(small_fat_tree.n_links)
        )
        injection = type(injection)(
            ground_truth=injection.ground_truth, plan=zero_plan
        )
        matrix = UniformTraffic(small_fat_tree)
        specs = generate_passive_flows(ft_routing, matrix, 300, rng)
        records = FlowLevelSimulator(small_fat_tree).simulate(
            specs, injection, rng
        )
        assert all(r.bad_packets == 0 for r in records)

    def test_total_loss_link(self, small_fat_tree, ft_routing, rng):
        # A link with rate 1.0 makes every flow crossing it all-bad.
        topo = small_fat_tree
        rates = np.zeros(topo.n_links)
        victim = topo.switch_switch_links()[0]
        rates[victim] = 1.0
        plan = DropRatePlan(topo, rates)
        injection = NoFailure().inject(topo, rng)
        injection = type(injection)(
            ground_truth=injection.ground_truth, plan=plan
        )
        matrix = UniformTraffic(topo)
        specs = generate_passive_flows(ft_routing, matrix, 500, rng)
        records = FlowLevelSimulator(topo).simulate(specs, injection, rng)
        for record in records:
            links = {
                topo.link_id(u, v)
                for u, v in zip(record.path, record.path[1:])
            }
            if victim in links:
                assert record.bad_packets == record.packets_sent
            else:
                assert record.bad_packets == 0

    def test_chosen_path_comes_from_spec(self, small_fat_tree, ft_routing, rng):
        matrix = UniformTraffic(small_fat_tree)
        specs = generate_passive_flows(ft_routing, matrix, 100, rng)
        injection = NoFailure().inject(small_fat_tree, rng)
        records = FlowLevelSimulator(small_fat_tree).simulate(
            specs, injection, rng
        )
        for spec, record in zip(specs, records):
            assert record.path in spec.paths
            assert record.src == spec.src

    def test_empirical_rate_tracks_plan(self, small_fat_tree, ft_routing):
        # With heavy probing of a single lossy path, the observed loss
        # rate converges to the planned drop probability.
        topo = small_fat_tree
        rng = np.random.default_rng(7)
        rates = np.zeros(topo.n_links)
        victim = topo.switch_switch_links()[0]
        rates[victim] = 0.02
        plan = DropRatePlan(topo, rates)
        injection = NoFailure().inject(topo, rng)
        injection = type(injection)(
            ground_truth=injection.ground_truth, plan=plan
        )
        u, v = topo.endpoints(victim)
        # Build a deterministic flow crossing the victim link.
        host = next(
            h for h in topo.hosts
            if any(n in (u, v) for n, _ in topo.neighbors(h))
        )
        rack = topo.rack_of(host)
        path = (host, u, v) if rack == u else (host, v, u)
        specs = [
            FlowSpec(src=host, dst=path[-1], packets=1000, paths=(path,))
            for _ in range(200)
        ]
        records = FlowLevelSimulator(topo).simulate(specs, injection, rng)
        total_bad = sum(r.bad_packets for r in records)
        total = sum(r.packets_sent for r in records)
        assert total_bad / total == pytest.approx(0.02, rel=0.2)

    def test_empirical_link_loss_index(self, drop_trace):
        loss = empirical_link_loss(drop_trace.topology, drop_trace.records)
        for link, (bad, total) in loss.items():
            assert 0 <= bad
            assert total > 0

    def test_empty_specs(self, small_fat_tree, rng):
        injection = NoFailure().inject(small_fat_tree, rng)
        assert FlowLevelSimulator(small_fat_tree).simulate([], injection, rng) == []
