"""FlowBatch chunk algebra: concat/slice round-trips, shared-space
interning, and column-alignment validation."""

import numpy as np
import pytest

from repro.eval.experiments import standard_topology
from repro.routing import EcmpRouting
from repro.simulation.failures import make_scenario
from repro.simulation.stream import replay_stream
from repro.types import FlowBatch

COLUMNS = (
    "src", "dst", "packets", "bad", "rtt_ms", "is_probe",
    "path_set", "chosen_path", "t_start",
)


@pytest.fixture(scope="module")
def chunks():
    topo = standard_topology("tiny")
    routing = EcmpRouting(topo)
    return list(
        replay_stream(
            topo, routing, make_scenario("silent-link-drops"),
            seed=11, n_chunks=3, flows_per_chunk=120, probes_per_chunk=30,
        )
    )


def _assert_batches_equal(a: FlowBatch, b: FlowBatch) -> None:
    assert a.space is b.space
    assert len(a) == len(b)
    for name in COLUMNS:
        ca, cb = getattr(a, name), getattr(b, name)
        if ca is None or cb is None:
            assert ca is None and cb is None
        else:
            assert np.array_equal(ca, cb), name


def test_concat_slice_round_trip(chunks):
    batch = chunks[0].batch
    k = len(batch) // 2
    halves = [batch.slice(0, k), batch.slice(k, len(batch))]
    _assert_batches_equal(FlowBatch.concat(halves), batch)


def test_slice_returns_views(chunks):
    batch = chunks[0].batch
    part = batch.slice(2, 9)
    assert len(part) == 7
    assert np.shares_memory(part.bad, batch.bad)
    assert np.shares_memory(part.t_start, batch.t_start)


def test_concat_preserves_interning(chunks):
    """Concatenated chunks resolve interned path ids against the one
    shared PathSpace, so records() round-trips per-chunk."""
    space = chunks[0].batch.space
    assert all(c.batch.space is space for c in chunks)
    merged = FlowBatch.concat([c.batch for c in chunks])
    assert merged.space is space
    expected = [r for c in chunks for r in c.batch.records()]
    assert merged.records() == expected
    # t_start stays monotone across chunk boundaries (arrival order)
    assert np.all(np.diff(merged.t_start) >= 0)


def test_concat_rejects_empty_and_mixed_spaces(chunks):
    with pytest.raises(ValueError):
        FlowBatch.concat([])
    other_topo = standard_topology("tiny")
    other = list(
        replay_stream(
            other_topo, EcmpRouting(other_topo),
            make_scenario("silent-link-drops"),
            seed=11, n_chunks=1, flows_per_chunk=40, probes_per_chunk=10,
        )
    )[0]
    with pytest.raises(ValueError):
        FlowBatch.concat([chunks[0].batch, other.batch])


def test_concat_rejects_mixed_timestamping(chunks):
    timed = chunks[0].batch
    untimed = FlowBatch(
        space=timed.space, src=timed.src, dst=timed.dst,
        packets=timed.packets, bad=timed.bad, rtt_ms=timed.rtt_ms,
        is_probe=timed.is_probe, path_set=timed.path_set,
        chosen_path=timed.chosen_path,
    )
    with pytest.raises(ValueError):
        FlowBatch.concat([timed, untimed])
    # both-untimed concatenation stays untimed
    assert FlowBatch.concat([untimed, untimed]).t_start is None


def test_misaligned_t_start_rejected(chunks):
    batch = chunks[0].batch
    with pytest.raises(ValueError):
        batch.with_t_start(np.zeros(len(batch) - 1))
