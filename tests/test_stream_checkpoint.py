"""Stream checkpointing: codec round-trips and validation, crash/resume
bit-identity across schemes, drift refusal, and the monitor's budget /
cadence parameter validation (library and CLI)."""

import json
import math

import numpy as np
import pytest

from repro.cli import main
from repro.core.flock_fast import VectorJleState
from repro.errors import CheckpointError, ExperimentError, InferenceError
from repro.eval import experiments
from repro.eval.schemes import make_setup
from repro.eval.serialize import (
    cycle_report_from_wire,
    cycle_report_to_wire,
    decode_stream_checkpoint,
    encode_stream_checkpoint,
    ndarray_from_wire,
    ndarray_to_wire,
)
from repro.eval.stream import StreamMonitor, incident_latencies
from repro.routing.ecmp import EcmpRouting
from repro.simulation.failures import make_scenario
from repro.simulation.stream import replay_stream

N_CYCLES = 8


def build_stream(seed=61, preset="tiny", n_chunks=N_CYCLES):
    """Fresh topology + regenerated chunk stream, as a new process
    would rebuild them (fresh PathSpace: interning starts empty)."""
    topology = experiments.standard_topology(preset)
    routing = EcmpRouting(topology)
    chunks = replay_stream(
        topology, routing, make_scenario("gray-drift"), seed=seed,
        n_chunks=n_chunks, flows_per_chunk=200, probes_per_chunk=50,
        onset_chunk=2, clear_chunk=None,
    )
    return topology, list(chunks)


class TestCodec:
    def test_ndarray_roundtrip_is_bit_exact(self):
        for array in (
            np.array([0.1, -1.5e300, math.pi]),
            np.arange(6, dtype=np.int64).reshape(2, 3),
            np.array([], dtype=np.float64),
            np.array([True, False]),
        ):
            back = ndarray_from_wire(ndarray_to_wire(array))
            assert back.dtype == array.dtype and back.shape == array.shape
            assert np.array_equal(back, array)
        back = ndarray_from_wire(ndarray_to_wire(np.array([1.0])))
        back[0] = 2.0  # decoded arrays must be writable

    def test_malformed_ndarray_rejected(self):
        with pytest.raises(CheckpointError, match="malformed ndarray"):
            ndarray_from_wire({"d": "<f8", "s": [4], "b": "not base64!"})
        with pytest.raises(CheckpointError, match="malformed ndarray"):
            ndarray_from_wire({"d": "<f8", "s": [999], "b": "AAAA"})

    def test_document_validation(self):
        text = encode_stream_checkpoint({"x": 1})
        assert decode_stream_checkpoint(text) == {"x": 1}
        with pytest.raises(CheckpointError, match="not valid JSON"):
            decode_stream_checkpoint("{truncated")
        with pytest.raises(CheckpointError, match="format tag"):
            decode_stream_checkpoint(json.dumps({"format": "other"}))
        doc = json.loads(text)
        doc["ckpt_v"] = 99
        with pytest.raises(CheckpointError, match="checkpoint layout"):
            decode_stream_checkpoint(json.dumps(doc))
        doc = json.loads(text)
        doc["payload"]["x"] = 2  # damage after checksumming
        with pytest.raises(CheckpointError, match="fails its checksum"):
            decode_stream_checkpoint(json.dumps(doc))

    def test_cycle_report_roundtrip_drops_timings(self):
        topology, chunks = build_stream()
        monitor = StreamMonitor(topology, window=3, seed=61)
        report = monitor.step(chunks[0])
        back = cycle_report_from_wire(
            json.loads(json.dumps(cycle_report_to_wire(report)))
        )
        assert back.prediction == report.prediction
        assert back.truth == report.truth
        assert back.cycle == report.cycle
        assert back.build_seconds == 0.0 and back.localize_seconds == 0.0


class TestCrashResume:
    @pytest.mark.parametrize("scheme", ["flock", "flock-greedy", "sherlock"])
    def test_resume_is_bit_identical(self, scheme, tmp_path):
        crash_at = 4
        topology, chunks = build_stream()
        monitor = StreamMonitor(topology, scheme=scheme, window=3, seed=61)
        baseline = [cycle_report_to_wire(monitor.step(c)) for c in chunks]

        path = tmp_path / "stream.ckpt"
        topology, chunks = build_stream()
        monitor = StreamMonitor(
            topology, scheme=scheme, window=3, seed=61,
            checkpoint_path=str(path), checkpoint_every=1,
        )
        for chunk in chunks[:crash_at]:
            monitor.step(chunk)
        del monitor  # the crash

        topology, chunks = build_stream()
        payload = decode_stream_checkpoint(path.read_text())
        monitor = StreamMonitor.from_checkpoint(payload, topology, chunks)
        assert monitor.cursor == crash_at and monitor.cycles == crash_at
        resumed = [
            cycle_report_to_wire(monitor.step(c))
            for c in chunks if c.index >= monitor.cursor
        ]
        assert resumed == baseline[crash_at:]

    def test_resume_refuses_drifted_stream(self, tmp_path):
        topology, chunks = build_stream(seed=61)
        monitor = StreamMonitor(topology, window=3, seed=61)
        for chunk in chunks[:4]:
            monitor.step(chunk)
        payload = decode_stream_checkpoint(
            encode_stream_checkpoint(monitor.checkpoint_payload())
        )
        topology, drifted = build_stream(seed=62)
        with pytest.raises(CheckpointError, match="diverges"):
            StreamMonitor.from_checkpoint(payload, topology, drifted)

    def test_resume_refuses_wrong_topology(self, tmp_path):
        topology, chunks = build_stream()
        monitor = StreamMonitor(topology, window=3, seed=61)
        monitor.step(chunks[0])
        payload = monitor.checkpoint_payload()
        other, _ = build_stream(preset="ci")
        with pytest.raises(CheckpointError, match="same preset"):
            StreamMonitor.from_checkpoint(payload, other, chunks)

    def test_checkpoint_cadence(self, tmp_path):
        path = tmp_path / "every3.ckpt"
        topology, chunks = build_stream()
        monitor = StreamMonitor(
            topology, window=3, seed=61,
            checkpoint_path=str(path), checkpoint_every=3,
        )
        monitor.step(chunks[0])
        monitor.step(chunks[1])
        assert not path.exists()
        monitor.step(chunks[2])
        assert path.exists()
        assert decode_stream_checkpoint(path.read_text())["cursor"] == 3

    def test_custom_setup_cannot_checkpoint(self):
        topology, chunks = build_stream()
        monitor = StreamMonitor(topology, setup=make_setup("flock"))
        monitor.step(chunks[0])
        with pytest.raises(CheckpointError, match="registry scheme"):
            monitor.checkpoint_payload()

    def test_incident_latencies_on_a_resumed_tail(self):
        # A resumed monitor's report list starts mid-stream; latency
        # accounting must key on cycle numbers, not list positions.
        topology, chunks = build_stream()
        monitor = StreamMonitor(topology, window=3, seed=61)
        reports = [monitor.step(c) for c in chunks]
        tail = incident_latencies(reports[3:])
        assert tail and tail[0]["onset_cycle"] == 3
        if tail[0]["detected_cycle"] is not None:
            assert tail[0]["latency_seconds"] >= 0

    def test_restore_validates_delta_shape(self):
        topology, chunks = build_stream()
        monitor = StreamMonitor(topology, scheme="flock", window=3, seed=61)
        monitor.step(chunks[0])
        problem = monitor.windowed.problem
        params = monitor.setup.localizer.params
        with pytest.raises(InferenceError, match="does not match this window"):
            VectorJleState.restore(
                problem, params, hypothesis=[], delta=np.zeros(3),
                ll=0.0, flips=0,
            )


class TestValidation:
    @pytest.mark.parametrize(
        "budget", [0, -1.0, float("nan"), float("inf"), -float("inf")]
    )
    def test_cycle_budget_rejects_non_positive_non_finite(self, budget):
        topology = experiments.standard_topology("tiny")
        with pytest.raises(ExperimentError, match="cycle_budget"):
            StreamMonitor(topology, cycle_budget=budget)

    @pytest.mark.parametrize("every", [0, -2, True, 1.5])
    def test_checkpoint_every_rejects_bad_cadence(self, every):
        topology = experiments.standard_topology("tiny")
        with pytest.raises(ExperimentError, match="checkpoint_every"):
            StreamMonitor(topology, checkpoint_every=every)

    @pytest.mark.parametrize("budget", ["0", "-1", "nan", "inf"])
    def test_cli_rejects_bad_cycle_budget(self, budget, capsys):
        code = main([
            "stream", "gray-drift", "--preset", "tiny", "--cycles", "2",
            "--cycle-budget", budget,
        ])
        assert code == 2
        assert "cycle_budget" in capsys.readouterr().err

    def test_cli_requires_scenario_or_resume(self, capsys):
        assert main(["stream", "--preset", "tiny"]) == 2
        assert "scenario" in capsys.readouterr().err


class TestCliResume:
    def test_checkpoint_then_resume_via_cli(self, tmp_path, capsys):
        path = tmp_path / "cli.ckpt"
        args = ["stream", "gray-drift", "--preset", "tiny", "--cycles", "6",
                "--flows", "200", "--probes", "50", "--window", "3"]
        assert main(args + ["--checkpoint", str(path)]) == 0
        capsys.readouterr()
        # The final checkpoint covers every cycle: the resumed run has
        # nothing left to do but must still load and report cleanly.
        assert main(["stream", "--resume", str(path)]) == 0
        out = capsys.readouterr().out
        assert "resuming gray-drift" in out
        assert "6 cycle(s) already done" in out

    def test_resume_rejects_non_checkpoint_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": 1}))
        assert main(["stream", "--resume", str(bogus)]) == 2
        assert "not a stream checkpoint" in capsys.readouterr().err
