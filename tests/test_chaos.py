"""Chaos-hardening tests: retry policy, lease heartbeats, checksummed
results, the seeded fault-injection soak, and stream degradation.

The robustness contract under test: under any seeded chaos schedule the
fleet drains and ``collect`` is bit-identical to a serial run; a unit
that outlives its lease completes exactly once when heartbeats renew
it and zero times when they don't; corrupted payloads are detected and
re-queued, never folded; and a budgeted ``StreamMonitor`` degrades
gracefully instead of falling behind.
"""

import sqlite3
import time

import pytest

from repro.core.gibbs import GibbsInference
from repro.errors import ChaosError, ExperimentError, FleetError, ReproError
from repro.eval import chaos, fleet
from repro.eval.broker import Broker, FleetCounts
from repro.eval.chaos import ChaosPolicy, ChaosSpec, WorkerCrash
from repro.eval.experiments import standard_topology
from repro.eval.harness import SchemeSetup
from repro.eval.schemes import make_setup
from repro.eval.serialize import encode_unit_payload, payload_checksum
from repro.eval.spec import run_experiment
from repro.eval.stream import StreamMonitor
from repro.retry import RetryPolicy
from repro.routing.ecmp import EcmpRouting
from repro.simulation.failures import make_scenario
from repro.simulation.stream import replay_stream


# ---------------------------------------------------------------------------
# RetryPolicy


class TestRetryPolicy:
    def test_delays_are_bounded_and_deterministic(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.5,
            jitter=0.5, seed=7,
        )
        a = [next_delay for next_delay, _ in zip(
            policy.delays(policy.make_rng()), range(5))]
        b = [next_delay for next_delay, _ in zip(
            policy.delays(policy.make_rng()), range(5))]
        assert a == b  # same seed, same schedule
        for k, delay in enumerate(a):
            nominal = min(0.1 * 2.0 ** k, 0.5)
            assert nominal * 0.5 <= delay <= nominal * 1.5

    def test_transient_errors_retry_then_succeed(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        policy = RetryPolicy(attempts=5, base_delay=0.01, seed=0)
        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_budget_exhaustion_raises_the_original_error(self):
        def always():
            raise sqlite3.OperationalError("database is locked")

        policy = RetryPolicy(attempts=3, base_delay=0.0, seed=0)
        with pytest.raises(sqlite3.OperationalError):
            policy.call(always, sleep=lambda s: None)

    def test_non_transient_errors_raise_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("not transient")

        policy = RetryPolicy(attempts=5, base_delay=0.0, seed=0)
        with pytest.raises(ValueError):
            policy.call(broken, sleep=lambda s: None)
        assert len(calls) == 1

    def test_repro_errors_never_retry_even_when_type_matches(self):
        calls = []

        def misconfigured():
            calls.append(1)
            raise ExperimentError("a real bug, not contention")

        policy = RetryPolicy(
            attempts=5, base_delay=0.0, transient=(Exception,), seed=0
        )
        with pytest.raises(ExperimentError):
            policy.call(misconfigured, sleep=lambda s: None)
        assert len(calls) == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# Broker hardening: renew, late reports, checksums, reap bookkeeping


def _submit(tmp_path, **kwargs):
    kwargs.setdefault("preset", "tiny")
    kwargs.setdefault("unit_traces", 4)
    path = tmp_path / "broker.db"
    fleet.submit(path, "fig2", **kwargs)
    return path


class TestBrokerHardening:
    def test_renew_extends_a_live_lease(self, tmp_path):
        path = _submit(tmp_path, lease_seconds=10.0)
        with Broker.open(path) as broker:
            leased = broker.claim("w0", now=100.0)
            assert leased.lease_expires == 110.0
            assert broker.renew(leased.unit_id, "w0", now=105.0) == 115.0

    def test_renew_by_a_non_holder_is_refused(self, tmp_path):
        path = _submit(tmp_path, lease_seconds=10.0)
        with Broker.open(path) as broker:
            leased = broker.claim("w0", now=100.0)
            assert broker.renew(leased.unit_id, "w1", now=105.0) is None

    def test_late_renew_is_discarded_and_the_unit_reaped(self, tmp_path):
        path = _submit(tmp_path, lease_seconds=10.0)
        with Broker.open(path) as broker:
            leased = broker.claim("w0", now=100.0)
            assert broker.renew(leased.unit_id, "w0", now=200.0) is None
            row = broker.unit_rows()[leased.unit_id - 1]
            assert row["status"] == "pending"
            assert row["worker"] is None
            assert row["lease_expires"] is None

    def test_late_completion_discarded_without_an_intervening_claim(
        self, tmp_path
    ):
        path = _submit(tmp_path, lease_seconds=10.0)
        with Broker.open(path) as broker:
            leased = broker.claim("w0", now=100.0)
            wire, checksum = encode_unit_payload({"v": 2})
            assert not broker.complete(
                leased.unit_id, "w0", now=150.0, wire=wire, checksum=checksum
            )
            row = broker.unit_rows()[leased.unit_id - 1]
            assert row["status"] == "pending"
            assert broker.counts().done == 0

    def test_late_failure_report_is_discarded(self, tmp_path):
        path = _submit(tmp_path, lease_seconds=10.0)
        with Broker.open(path) as broker:
            leased = broker.claim("w0", now=100.0)
            assert broker.fail(
                leased.unit_id, "w0", "slow crash", now=150.0
            ) is None
            row = broker.unit_rows()[leased.unit_id - 1]
            assert row["status"] == "pending"

    def test_reap_clears_worker_and_lease_on_the_failed_path(self, tmp_path):
        # Satellite: an attempts-exhausted reap must not leak stale
        # lease bookkeeping into the failed row.
        path = _submit(tmp_path, lease_seconds=10.0, max_attempts=1)
        with Broker.open(path) as broker:
            leased = broker.claim("w0", now=100.0)
            broker.claim("w1", now=200.0)  # reaps w0's expired lease
            row = broker.unit_rows()[leased.unit_id - 1]
            assert row["status"] == "failed"
            assert row["worker"] is None
            assert row["lease_expires"] is None
            assert "lease expired" in row["error"]
            assert "w0" in row["error"]
            broker.retry_failed()
            row = broker.unit_rows()[leased.unit_id - 1]
            assert row["status"] == "pending"
            assert row["error"] is None
            assert row["attempts"] == 0

    def test_v1_broker_files_are_rejected_with_guidance(self, tmp_path):
        path = tmp_path / "old.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        conn.execute(
            "INSERT INTO meta VALUES ('format', '\"flock-broker-v1\"')"
        )
        conn.commit()
        conn.close()
        with pytest.raises(ExperimentError, match="resubmit"):
            Broker.open(path)


class TestChecksummedResults:
    def _drain(self, path):
        return fleet.work(
            path, worker_id="w0", wait=False, heartbeat_seconds=0
        )

    def _tamper(self, path):
        conn = sqlite3.connect(path)
        unit_id, payload = conn.execute(
            "SELECT unit_id, payload FROM results ORDER BY unit_id LIMIT 1"
        ).fetchone()
        conn.execute(
            "UPDATE results SET payload = ? WHERE unit_id = ?",
            (payload[:-2] + "]}" if payload.endswith("}}") else payload + " ",
             unit_id),
        )
        conn.commit()
        conn.close()
        return unit_id

    def test_corruption_is_detected_requeued_and_healed(self, tmp_path):
        path = _submit(tmp_path)
        self._drain(path)
        unit_id = self._tamper(path)

        with Broker.open(path) as broker:
            with pytest.raises(FleetError, match="checksum"):
                broker.results()

        with pytest.raises(FleetError, match="re-queued"):
            fleet.collect(path)
        with Broker.open(path) as broker:
            row = broker.unit_rows()[unit_id - 1]
            assert row["status"] == "pending"

        self._drain(path)
        collected = fleet.collect(path)
        assert collected.rows == run_experiment("fig2", preset="tiny").rows

    def test_verify_results_passes_clean_brokers(self, tmp_path):
        path = _submit(tmp_path)
        self._drain(path)
        with Broker.open(path) as broker:
            assert broker.verify_results() == []

    def test_payload_checksum_is_stable(self):
        text, checksum = encode_unit_payload({"a": 1})
        assert checksum == payload_checksum(text)
        assert payload_checksum(text + " ") != checksum


# ---------------------------------------------------------------------------
# Heartbeats: long units under short leases


class TestHeartbeats:
    def test_long_unit_completes_exactly_once_with_heartbeats(
        self, tmp_path, monkeypatch
    ):
        # Acceptance: a unit running ~3x the lease completes exactly
        # once (never re-queued, never double-counted) because the
        # worker's heartbeat ticker keeps renewing the lease.
        path = _submit(tmp_path, lease_seconds=1.0)
        real_run_spec = fleet.run_spec
        slowed = []

        def slow_once(*args, **kwargs):
            if not slowed:
                slowed.append(1)
                time.sleep(3.0)
            return real_run_spec(*args, **kwargs)

        monkeypatch.setattr(fleet, "run_spec", slow_once)
        report = fleet.work(path, worker_id="w0", wait=False)
        assert report.stale == 0
        assert report.failed == 0
        assert report.renewed >= 2
        with Broker.open(path) as broker:
            counts = broker.counts()
            assert counts.done == counts.total
            assert all(r["attempts"] == 1 for r in broker.unit_rows())
        collected = fleet.collect(path)
        assert collected.rows == run_experiment("fig2", preset="tiny").rows

    def test_without_heartbeats_the_late_completion_is_discarded(
        self, tmp_path, monkeypatch
    ):
        path = _submit(tmp_path, lease_seconds=0.5, max_attempts=1)
        real_run_spec = fleet.run_spec
        slowed = []

        def slow_once(*args, **kwargs):
            if not slowed:
                slowed.append(1)
                time.sleep(1.5)
            return real_run_spec(*args, **kwargs)

        monkeypatch.setattr(fleet, "run_spec", slow_once)
        report = fleet.work(
            path, worker_id="w0", wait=False, heartbeat_seconds=0
        )
        assert report.stale >= 1
        with Broker.open(path) as broker:
            assert broker.counts().failed >= 1


# ---------------------------------------------------------------------------
# Worker error reporting (traceback-grade error column)


class TestWorkerErrors:
    def test_unit_failures_store_the_full_traceback(
        self, tmp_path, monkeypatch
    ):
        path = _submit(tmp_path, max_attempts=1)

        def explode(*args, **kwargs):
            raise ValueError("boom from deep inside a unit")

        monkeypatch.setattr(fleet, "run_spec", explode)
        report = fleet.work(
            path, worker_id="w0", wait=False, heartbeat_seconds=0
        )
        assert report.failed >= 1
        state = fleet.status(path, detail=True)
        failed = [r for r in state["units"] if r["status"] == "failed"]
        assert failed
        for row in failed:
            assert "Traceback (most recent call last)" in row["error"]
            assert "ValueError: boom from deep inside a unit" in row["error"]
        assert state["errors"]

        # fleet retry clears the stored errors with the attempt budget.
        fleet.retry(path)
        state = fleet.status(path, detail=True)
        assert all(r["error"] is None for r in state["units"])


# ---------------------------------------------------------------------------
# Fleet status progress guard (ETA derivation)


class TestProgressGuard:
    COUNTS = FleetCounts(pending=2, leased=1, done=3, failed=0)

    def test_fewer_than_two_completions_reports_null_rate(self):
        for times in ([], [5.0]):
            progress = fleet._progress(self.COUNTS, times)
            assert progress["rate_per_s"] is None
            assert progress["eta_s"] is None

    def test_identical_timestamps_report_null_rate(self):
        progress = fleet._progress(self.COUNTS, [5.0, 5.0, 5.0])
        assert progress["rate_per_s"] is None
        assert progress["eta_s"] is None

    def test_measurable_span_reports_rate_and_eta(self):
        progress = fleet._progress(self.COUNTS, [0.0, 1.0, 2.0])
        assert progress["rate_per_s"] == pytest.approx(1.0)
        assert progress["eta_s"] == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# The chaos subsystem itself


class TestChaosPolicy:
    def test_spec_validation(self):
        with pytest.raises(ChaosError):
            ChaosSpec(crash_at_claim=1.5)
        with pytest.raises(ChaosError):
            ChaosSpec(db_locked=-0.1)
        with pytest.raises(ChaosError):
            ChaosSpec(max_burst=0)

    def test_worker_clock_skew_is_fixed_per_worker(self):
        policy = ChaosPolicy(seed=3, spec=ChaosSpec(max_clock_skew=2.0))
        clock_a = policy.worker_clock("a")
        clock_b = policy.worker_clock("b")
        skew_a = clock_a() - policy.clock.now()
        assert abs(skew_a) <= 2.0
        policy.clock.advance(10.0)
        assert clock_a() - policy.clock.now() == pytest.approx(skew_a)
        assert clock_b() - policy.clock.now() != pytest.approx(skew_a)

    def test_corrupt_wire_changes_the_checksum(self):
        policy = ChaosPolicy(seed=0, spec=ChaosSpec(corrupt=1.0))
        wire, checksum = encode_unit_payload({"k": [1, 2, 3]})
        damaged = policy.corrupt_wire(None, wire)
        assert damaged != wire
        assert payload_checksum(damaged) != checksum

    def test_arrival_bursts_cover_the_stream(self):
        policy = ChaosPolicy(seed=5, spec=ChaosSpec(burst=0.5))
        schedule = policy.arrival_bursts(20)
        assert sum(schedule) == 20
        assert all(n >= 1 for n in schedule)
        again = ChaosPolicy(seed=5, spec=ChaosSpec(burst=0.5))
        assert again.arrival_bursts(20) == schedule

    def test_hooks_raise_worker_crash_when_scheduled(self):
        policy = ChaosPolicy(seed=0, spec=ChaosSpec(crash_at_claim=1.0))
        with pytest.raises(WorkerCrash):
            policy.on_claim(
                type("L", (), {"unit_id": 1})()
            )
        assert policy.events["crash_at_claim"] == 1


class TestChaosSoak:
    def test_soaks_drain_bit_identical_across_seeds(self, tmp_path):
        # Randomized soak: several seeds, two profiles, one shared
        # serial baseline.  strict=True means any non-draining or
        # diverging soak raises ChaosError and fails the test.
        serial = run_experiment("fig2", preset="tiny").rows
        reports = []
        for seed, spec in ((1, chaos.DEFAULT), (1, chaos.HEAVY),
                           (4, chaos.HEAVY)):
            reports.append(chaos.run_chaos_soak(
                seed=seed, spec=spec, workdir=tmp_path,
                serial_rows=serial, strict=True,
            ))
        assert all(r.ok for r in reports)
        # The schedules must actually exercise the hardening: across
        # these seeds every fault class fires at least once.
        fired = {}
        for report in reports:
            for name, count in report.events.items():
                fired[name] = fired.get(name, 0) + count
        for fault in ("crash_at_claim", "crash_mid_unit", "stall",
                      "db_locked", "corrupt"):
            assert fired.get(fault, 0) > 0, f"{fault} never fired"
        assert any(r.corrupt_requeued for r in reports)
        assert any(r.crashes for r in reports)

    def test_soak_is_deterministic_per_seed(self, tmp_path):
        serial = run_experiment("fig2", preset="tiny").rows
        first = chaos.run_chaos_soak(
            seed=2, spec=chaos.HEAVY, workdir=tmp_path / "a",
            serial_rows=serial,
        )
        second = chaos.run_chaos_soak(
            seed=2, spec=chaos.HEAVY, workdir=tmp_path / "b",
            serial_rows=serial,
        )
        assert first == second

    def test_soak_requires_a_workdir(self):
        with pytest.raises(ChaosError):
            chaos.run_chaos_soak(workdir=None)


# ---------------------------------------------------------------------------
# Stream degradation


def _stream_fixture(n_chunks=6):
    topology = standard_topology("tiny")
    routing = EcmpRouting(topology)
    scenario = make_scenario("gray-drift")
    chunks = list(replay_stream(
        topology, routing, scenario, seed=5, n_chunks=n_chunks,
        flows_per_chunk=120, probes_per_chunk=40,
        onset_chunk=min(2, n_chunks - 1),
    ))
    return topology, chunks


def _gibbs_setup():
    base = make_setup("flock")
    return SchemeSetup(
        name="gibbs",
        localizer=GibbsInference(
            base.localizer.params, sweeps=8, burn_in=2, seed=0
        ),
        telemetry=base.telemetry,
    )


class TickClock:
    """A fake monotonic clock advancing a fixed tick per reading."""

    def __init__(self, tick: float) -> None:
        self.t = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.t += self.tick
        return self.t


class TestStreamDegradation:
    def test_budget_must_be_positive(self):
        topology, _ = _stream_fixture(1)
        with pytest.raises(ExperimentError):
            StreamMonitor(topology, cycle_budget=0.0)

    def test_over_budget_cycles_carry_the_previous_hypothesis(self):
        topology, chunks = _stream_fixture(4)
        # Every clock reading advances 1s against a 0.5s budget: the
        # first cycle localizes (nothing to carry), the rest carry.
        monitor = StreamMonitor(
            topology, scheme="flock", window=3,
            cycle_budget=0.5, clock=TickClock(1.0),
        )
        reports = monitor.run(chunks)
        assert reports[0].degrade_reason is None
        for report in reports[1:]:
            assert report.degraded
            assert report.degrade_reason == "carried"
            assert report.prediction == reports[0].prediction
            assert report.budget_seconds == 0.5
        assert monitor.degraded_cycles == len(chunks) - 1

    def test_gibbs_falls_back_to_warm_greedy_past_half_budget(self):
        topology, chunks = _stream_fixture(3)
        # elapsed-at-localize is ~3 ticks; budget 5 puts every cycle
        # past half budget but under it: the Gibbs chain is swapped
        # for a warm greedy pass instead of being skipped.
        monitor = StreamMonitor(
            topology, setup=_gibbs_setup(), window=3,
            cycle_budget=5.0, clock=TickClock(1.0),
        )
        reports = monitor.run(chunks)
        for report in reports:
            assert report.degraded
            assert report.degrade_reason == "greedy"

    def test_within_budget_cycles_are_not_degraded(self):
        topology, chunks = _stream_fixture(3)
        monitor = StreamMonitor(
            topology, scheme="flock", window=3, cycle_budget=1e9
        )
        reports = monitor.run(chunks)
        assert all(not r.degraded for r in reports)
        assert all(r.degrade_reason is None for r in reports)
        assert monitor.degraded_cycles == 0

    def test_pump_sheds_and_coalesces_backlog(self):
        topology, chunks = _stream_fixture(6)
        monitor = StreamMonitor(topology, scheme="flock", window=3)
        report = monitor.pump(chunks)
        # 6 chunks against a window of 3: 3 shed, 2 folded without
        # localizing, the newest gets the one localization.
        assert report.cycle == chunks[-1].index
        assert report.shed_chunks == 3
        assert report.coalesced_chunks == 2
        assert report.degraded
        assert monitor.degraded_cycles == 1

    def test_pump_rejects_an_empty_backlog(self):
        topology, _ = _stream_fixture(1)
        monitor = StreamMonitor(topology)
        with pytest.raises(ExperimentError):
            monitor.pump([])

    def test_run_with_a_burst_schedule(self):
        topology, chunks = _stream_fixture(6)
        monitor = StreamMonitor(topology, scheme="flock", window=4)
        reports = monitor.run(chunks, arrivals=[1, 2, 3])
        assert len(reports) == 3
        assert reports[0].coalesced_chunks == 0
        assert reports[1].coalesced_chunks == 1
        assert reports[2].coalesced_chunks == 2
        assert [r.shed_chunks for r in reports] == [0, 0, 0]

    def test_run_rejects_a_schedule_that_does_not_cover_the_stream(self):
        topology, chunks = _stream_fixture(4)
        monitor = StreamMonitor(topology)
        with pytest.raises(ExperimentError):
            monitor.run(chunks, arrivals=[1, 1])

    def test_degraded_cycles_still_maintain_the_window(self):
        # A carried cycle must keep folding chunks so the next full
        # cycle sees the correct window, not a stale one.
        topology, chunks = _stream_fixture(4)
        budgeted = StreamMonitor(
            topology, scheme="flock", window=3,
            cycle_budget=0.5, clock=TickClock(1.0),
        )
        budgeted.run(chunks[:-1])
        # Lift the budget for the last cycle: its window must match an
        # unbudgeted monitor that folded every chunk.
        budgeted.cycle_budget = None
        final = budgeted.step(chunks[-1])
        reference = StreamMonitor(topology, scheme="flock", window=3)
        expected = reference.run(chunks)[-1]
        assert final.grouped_flows == expected.grouped_flows
        assert final.raw_flows == expected.raw_flows
