"""Equivalence of the vectorized kernels and the reference engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import PARAMS, random_problems
from repro.core.flock import FlockInference
from repro.core.flock_fast import (
    VectorArrays,
    VectorGreedyWithoutJle,
    VectorJleState,
)
from repro.core.greedy_nojle import GreedyWithoutJle
from repro.core.jle import JleState
from repro.core.model import LikelihoodModel
from repro.errors import InferenceError


class TestVectorArrays:
    @given(problem=random_problems(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_ll_matches_reference(self, problem, data):
        arrays = VectorArrays(problem, PARAMS)
        model = LikelihoodModel(problem, PARAMS)
        size = data.draw(st.integers(min_value=0, max_value=3))
        hyp = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=problem.n_components - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        assert arrays.hypothesis_ll(hyp) == pytest.approx(
            model.log_likelihood(hyp), abs=1e-8
        )

    def test_empty_hypothesis(self, drop_problem):
        arrays = VectorArrays(drop_problem, PARAMS)
        assert arrays.hypothesis_ll([]) == 0.0


class TestVectorJleState:
    @given(problem=random_problems(), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_over_flip_sequences(self, problem, data):
        ref = JleState(problem, PARAMS)
        vec = VectorJleState(problem, PARAMS)
        np.testing.assert_allclose(vec.delta, ref.delta, atol=1e-9)
        comps = list(range(problem.n_components))
        for _ in range(4):
            comp = data.draw(st.sampled_from(comps))
            ref_change = ref.flip(comp)
            vec_change = vec.flip(comp)
            assert vec_change == pytest.approx(ref_change, abs=1e-8)
            assert vec.hypothesis == ref.hypothesis
            np.testing.assert_allclose(vec.delta, ref.delta, atol=1e-8)
            np.testing.assert_array_equal(
                vec.path_nfailed, np.asarray(ref.path_nfailed)
            )
            np.testing.assert_array_equal(
                vec.flow_b, np.asarray(ref.flow_b)
            )

    def test_involution(self, drop_problem):
        state = VectorJleState(drop_problem, PARAMS)
        delta_before = state.delta.copy()
        comp = drop_problem.observed_components[3]
        change = state.flip(comp)
        back = state.flip(comp)
        assert change == pytest.approx(-back, abs=1e-9)
        np.testing.assert_allclose(state.delta, delta_before, atol=1e-8)

    def test_gain_rejects_members(self, drop_problem):
        state = VectorJleState(drop_problem, PARAMS)
        comp = drop_problem.observed_components[0]
        state.flip(comp)
        with pytest.raises(InferenceError):
            state.gain(comp)


class TestGreedyEquivalence:
    @given(problem=random_problems())
    @settings(max_examples=40, deadline=None)
    def test_all_greedy_variants_agree(self, problem):
        # Symmetric random problems produce exact gain ties, where the
        # pick depends on floating-point summation order - so the
        # contract is equal posterior log-likelihood (verified by an
        # independent evaluator), not bit-identical hypotheses.
        model = LikelihoodModel(problem, PARAMS)
        predictions = [
            FlockInference(PARAMS, engine="fast").localize(problem),
            FlockInference(PARAMS, engine="reference").localize(problem),
            GreedyWithoutJle(PARAMS).localize(problem),
            VectorGreedyWithoutJle(problem, PARAMS).run(),
        ]
        lls = [model.log_likelihood(p.components) for p in predictions]
        for pred, ll in zip(predictions, lls):
            # Each variant's self-reported ll must match the evaluator.
            assert pred.log_likelihood == pytest.approx(ll, abs=1e-7)
        for ll in lls[1:]:
            assert ll == pytest.approx(lls[0], abs=1e-7)

    def test_engines_agree_on_real_trace(self, drop_problem):
        fast = FlockInference(PARAMS, engine="fast").localize(drop_problem)
        ref = FlockInference(PARAMS, engine="reference").localize(drop_problem)
        assert fast.components == ref.components
        assert fast.log_likelihood == pytest.approx(
            ref.log_likelihood, rel=1e-9
        )

    def test_greedy_ll_matches_direct_evaluation(self, drop_problem):
        pred = FlockInference(PARAMS).localize(drop_problem)
        model = LikelihoodModel(drop_problem, PARAMS)
        assert pred.log_likelihood == pytest.approx(
            model.log_likelihood(pred.components), abs=1e-6
        )

    def test_invalid_engine(self):
        with pytest.raises(InferenceError):
            FlockInference(PARAMS, engine="gpu")
