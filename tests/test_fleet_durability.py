"""Durable-fleet tests: the v3 multi-experiment broker (v1 rejection,
v2 in-place migration), journaled crash-safe submission and resume,
priority-then-FIFO scheduling across experiments, the collect-time
checksum audit, and the chaos soaks that close the loop."""

import json
import sqlite3

import pytest

from repro.cli import main
from repro.errors import ExperimentError, FleetError
from repro.eval import chaos, fleet
from repro.eval.broker import (
    BROKER_FORMAT,
    EXPERIMENT_META_KEYS,
    Broker,
)
from repro.eval.spec import run_experiment


def submit(path, **kwargs):
    kwargs.setdefault("preset", "tiny")
    kwargs.setdefault("unit_traces", 2)
    return fleet.submit(path, "fig2", **kwargs)


def drain(path, **kwargs):
    return fleet.work(path, worker_id="drainer", wait=False, **kwargs)


class Boom(Exception):
    """Stand-in for a submitter dying mid-enqueue (SIGKILL-shaped:
    not a ReproError, escapes fleet.submit with the journal open)."""


def crash_submit(path, kill_after=0, **kwargs):
    """Run a submission that dies after ``kill_after`` batches."""

    def bomb(batch_index, enqueued):
        if batch_index >= kill_after:
            raise Boom(f"killed after batch {batch_index}")

    with pytest.raises(Boom):
        submit(path, on_batch=bomb, batch_size=2, **kwargs)


def downgrade_to_v2(path):
    """Rewrite a freshly-submitted v3 broker file into the v2 layout
    an older checkout would have produced: single experiment, its
    identity in ``meta`` rows, no experiments table, no per-unit
    experiment columns."""
    conn = sqlite3.connect(path)
    meta_json, plan, lease_seconds, max_attempts = conn.execute(
        "SELECT meta, plan, lease_seconds, max_attempts FROM experiments "
        "WHERE id = 1"
    ).fetchone()
    meta = json.loads(meta_json)
    rows = [("plan", plan), ("lease_seconds", json.dumps(lease_seconds)),
            ("max_attempts", json.dumps(max_attempts))]
    rows += [(key, json.dumps(meta.get(key))) for key in EXPERIMENT_META_KEYS]
    conn.executemany(
        "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", rows
    )
    conn.execute(
        "UPDATE meta SET value = ? WHERE key = 'format'",
        (json.dumps("flock-broker-v2"),),
    )
    conn.executescript("""
        DROP TABLE experiments;
        CREATE TABLE units_v2 (
            id INTEGER PRIMARY KEY,
            call_index INTEGER NOT NULL,
            start INTEGER NOT NULL,
            stop INTEGER NOT NULL,
            seeds TEXT NOT NULL,
            status TEXT NOT NULL DEFAULT 'pending',
            attempts INTEGER NOT NULL DEFAULT 0,
            worker TEXT,
            lease_expires REAL,
            error TEXT
        );
        INSERT INTO units_v2
            SELECT id, call_index, start, stop, seeds, status, attempts,
                   worker, lease_expires, error
            FROM units ORDER BY id;
        DROP INDEX units_by_status;
        DROP TABLE units;
        ALTER TABLE units_v2 RENAME TO units;
        CREATE INDEX units_by_status ON units(status, id);
    """)
    conn.commit()
    conn.close()


@pytest.fixture(scope="module")
def serial_rows():
    return run_experiment("fig2", preset="tiny").rows


class TestFormatLifecycle:
    def test_v1_is_rejected_with_resubmit_guidance(self, tmp_path):
        path = tmp_path / "fleet.db"
        submit(path)
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'format'",
            (json.dumps("flock-broker-v1"),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(ExperimentError, match="resubmit the fleet"):
            Broker.open(path)

    def test_v2_migrates_in_place_and_drains(self, tmp_path, serial_rows):
        path = tmp_path / "fleet.db"
        submit(path)
        downgrade_to_v2(path)
        with Broker.open(path) as broker:
            rows = broker.experiments()
            assert [r.name for r in rows] == ["fig2"]
            assert rows[0].ready and rows[0].priority == 0
            assert rows[0].n_units == broker.counts().pending
            # The single-experiment accessors still resolve by default.
            assert broker.resolve_experiment(None).name == "fig2"
        # A second open is a no-op (migration ran exactly once).
        with Broker.open(path) as broker:
            conn = sqlite3.connect(path)
            fmt = json.loads(conn.execute(
                "SELECT value FROM meta WHERE key = 'format'"
            ).fetchone()[0])
            conn.close()
            assert fmt == BROKER_FORMAT
        drain(path)
        assert fleet.collect(path).rows == serial_rows


class TestJournaledSubmit:
    def test_crash_leaves_journal_open_and_resume_completes(
        self, tmp_path, serial_rows
    ):
        path = tmp_path / "fleet.db"
        crash_submit(path)
        with Broker.open(path) as broker:
            row = broker.resolve_experiment(None)
            assert not row.ready
            enqueued = len(broker.enqueued_units(row.id))
            assert 0 < enqueued < row.n_units
            # Workers never claim from an open journal.
            assert broker.claim("eager") is None
        # Collect refuses while the journal is open.
        with pytest.raises(FleetError, match="journal is still open"):
            fleet.collect(path)
        # A plain re-submit fails loudly with the recovery hint.
        with pytest.raises(FleetError, match="--if-exists resume"):
            submit(path)
        report = submit(path, if_exists="resume")
        assert report.resumed
        with Broker.open(path) as broker:
            row = broker.resolve_experiment(None)
            assert report.n_enqueued == row.n_units - enqueued
        drain(path)
        assert fleet.collect(path).rows == serial_rows

    def test_resume_refuses_a_different_plan(self, tmp_path):
        path = tmp_path / "fleet.db"
        crash_submit(path)
        with pytest.raises(FleetError, match="plan fingerprint"):
            submit(path, if_exists="resume", seed=999)

    def test_resume_of_ready_experiment_is_a_noop(self, tmp_path):
        path = tmp_path / "fleet.db"
        first = submit(path)
        report = submit(path, if_exists="resume")
        assert report.resumed and report.n_enqueued == 0
        with Broker.open(path) as broker:
            assert broker.counts().pending == first.n_units

    def test_existing_experiment_fails_by_default(self, tmp_path):
        path = tmp_path / "fleet.db"
        submit(path)
        with pytest.raises(FleetError, match="--if-exists resume"):
            submit(path)

    def test_if_exists_validation(self, tmp_path):
        with pytest.raises(ExperimentError, match="if_exists"):
            submit(tmp_path / "fleet.db", if_exists="maybe")


class TestMultiExperiment:
    @pytest.fixture()
    def two_experiments(self, tmp_path):
        path = tmp_path / "fleet.db"
        lo = submit(path, name="fig2-lo", priority=0)
        hi = submit(path, name="fig2-hi", priority=5, seed=104)
        return path, lo, hi

    def test_priority_then_fifo_claims(self, two_experiments):
        path, lo, hi = two_experiments
        with Broker.open(path) as broker:
            order = []
            while True:
                leased = broker.claim("scheduler-test")
                if leased is None:
                    break
                order.append(leased.experiment)
            assert order[:hi.n_units] == ["fig2-hi"] * hi.n_units
            assert order[hi.n_units:] == ["fig2-lo"] * lo.n_units

    def test_worker_filter_and_per_experiment_collect(
        self, two_experiments, serial_rows
    ):
        path, lo, hi = two_experiments
        report = drain(path, experiment="fig2-lo")
        assert report.completed == lo.n_units
        with Broker.open(path) as broker:
            assert broker.counts("fig2-hi").pending == hi.n_units
        with pytest.raises(ExperimentError, match="unfinished"):
            fleet.collect(path, experiment="fig2-hi")
        drain(path)
        assert fleet.collect(path, experiment="fig2-lo").rows == serial_rows
        hi_rows = fleet.collect(path, experiment="fig2-hi").rows
        assert hi_rows == run_experiment("fig2", preset="tiny", seed=104).rows

    def test_ambiguous_experiment_must_be_named(self, two_experiments):
        path, _, _ = two_experiments
        with pytest.raises(FleetError, match="--experiment"):
            fleet.collect(path)

    def test_unknown_worker_experiment_fails_fast(self, two_experiments):
        path, _, _ = two_experiments
        with pytest.raises(FleetError):
            fleet.work(path, worker_id="lost", wait=False, experiment="nope")

    def test_status_json_cli(self, two_experiments, capsys):
        path, lo, hi = two_experiments
        assert main(["fleet", "status", str(path), "--json"]) == 0
        state = json.loads(capsys.readouterr().out)
        assert state["counts"]["pending"] == lo.n_units + hi.n_units
        by_name = {e["name"]: e for e in state["experiments"]}
        assert by_name["fig2-hi"]["priority"] == 5
        assert by_name["fig2-hi"]["state"] == "ready"
        assert by_name["fig2-lo"]["counts"]["pending"] == lo.n_units


class TestCollectAudit:
    def test_collect_refuses_tampered_results(self, tmp_path, serial_rows):
        path = tmp_path / "fleet.db"
        submit(path)
        drain(path)
        conn = sqlite3.connect(path)
        unit_id, payload = conn.execute(
            "SELECT unit_id, payload FROM results ORDER BY unit_id"
        ).fetchone()
        conn.execute(
            "UPDATE results SET payload = ? WHERE unit_id = ?",
            (payload.replace('"', "'", 1), unit_id),
        )
        conn.commit()
        conn.close()
        with pytest.raises(FleetError, match="failed their checksum"):
            fleet.collect(path)
        # The audit re-queued the damaged unit; a healthy worker heals it.
        with Broker.open(path) as broker:
            assert broker.counts().pending == 1
        drain(path)
        assert fleet.collect(path).rows == serial_rows


class TestChaosClosesTheLoop:
    def test_submitter_kill_soak_drains_identical(self, tmp_path, serial_rows):
        spec = chaos.ChaosSpec(
            crash_at_claim=0, crash_mid_unit=0, stall=0, db_locked=0,
            corrupt=0, max_clock_skew=0, submit_crash=1.0,
        )
        report = chaos.run_chaos_soak(
            seed=3, spec=spec, workdir=tmp_path, serial_rows=serial_rows,
        )
        assert report.ok and report.events.get("submit_crash") == 1

    def test_multi_experiment_soak(self, tmp_path):
        report = chaos.run_multi_soak(
            seed=1, spec=chaos.LIGHT, workdir=tmp_path,
        )
        assert report.ok
        assert report.first_claimed == "fig2-hi"

    def test_stream_crash_resume_soak(self, tmp_path):
        report = chaos.run_stream_soak(
            seed=0, spec=chaos.LIGHT, workdir=tmp_path,
        )
        assert report.ok and report.crash_cycle is not None
