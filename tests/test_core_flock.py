"""Behavioral tests of Flock's inference on planted-fault problems."""

import numpy as np
import pytest

from repro.baselines.sherlock import SherlockFerret
from repro.core.flock import FlockInference
from repro.core.params import DEFAULT_PER_PACKET, FlockParams
from repro.core.problem import InferenceProblem
from repro.errors import InferenceError
from repro.routing import EcmpRouting
from repro.simulation import SilentDeviceFailure, SilentLinkDrops, NoFailure
from repro.telemetry.inputs import TelemetryConfig, build_observations
from repro.topology import fat_tree
from repro.eval.scenarios import make_trace
from repro.types import FlowObservation


def problem_for(trace, spec="A1+A2+P", **kwargs):
    obs = build_observations(
        trace.records, trace.topology, trace.routing,
        TelemetryConfig.from_spec(spec, **kwargs),
        np.random.default_rng(11),
    )
    return InferenceProblem.from_observations(
        obs, trace.topology.n_components, trace.topology.n_links
    )


class TestLocalization:
    def test_finds_planted_links_exactly(self, small_fat_tree, ft_routing):
        trace = make_trace(
            small_fat_tree, ft_routing, SilentLinkDrops(n_failures=2, min_rate=4e-3, max_rate=1e-2),
            seed=42, n_passive=3000, n_probes=400,
        )
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem_for(trace))
        assert pred.components == trace.ground_truth.failed_links

    def test_healthy_network_returns_empty(self, small_fat_tree, ft_routing):
        trace = make_trace(
            small_fat_tree, ft_routing, NoFailure(),
            seed=43, n_passive=3000, n_probes=400,
        )
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem_for(trace))
        assert pred.components == frozenset()

    def test_device_failure_blames_device(self, small_fat_tree, ft_routing):
        trace = make_trace(
            small_fat_tree, ft_routing,
            SilentDeviceFailure(
                n_devices=1, min_link_fraction=1.0, max_link_fraction=1.0
            ),
            seed=44, n_passive=5000, n_probes=800,
        )
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem_for(trace))
        truth_device = next(iter(trace.ground_truth.failed_devices))
        # Either the device itself, or (at minimum) its links, are blamed.
        if truth_device not in pred.components:
            node = small_fat_tree.component_device(truth_device)
            device_links = set(small_fat_tree.device_links(node))
            assert pred.components & device_links
        else:
            assert truth_device in pred.components

    def test_matches_sherlock_mle_with_two_failures(
        self, small_fat_tree, ft_routing
    ):
        # Paper section 6.1: Sherlock (exact MLE for K<=2) "resulted in
        # the same accuracy as Flock for K<=2 failures at small scale".
        trace = make_trace(
            small_fat_tree, ft_routing, SilentLinkDrops(n_failures=2, min_rate=4e-3, max_rate=1e-2),
            seed=45, n_passive=2000, n_probes=300,
        )
        problem = problem_for(trace, spec="A2")
        flock = FlockInference(DEFAULT_PER_PACKET).localize(problem)
        sherlock = SherlockFerret(
            DEFAULT_PER_PACKET, max_failures=2
        ).localize(problem)
        if len(flock.components) <= 2:
            assert flock.components == sherlock.components
            assert flock.log_likelihood == pytest.approx(
                sherlock.log_likelihood, abs=1e-6
            )


class TestControls:
    def test_max_failures_cap(self, drop_problem):
        pred = FlockInference(DEFAULT_PER_PACKET, max_failures=1).localize(
            drop_problem
        )
        assert len(pred.components) <= 1

    def test_min_gain_raises_bar(self, drop_problem):
        strict = FlockInference(
            DEFAULT_PER_PACKET, min_gain=1e9
        ).localize(drop_problem)
        assert strict.components == frozenset()

    def test_empty_problem(self):
        problem = InferenceProblem.from_observations([], 10, 10)
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem)
        assert pred.components == frozenset()

    def test_scores_track_additions(self, drop_problem):
        pred = FlockInference(DEFAULT_PER_PACKET).localize(drop_problem)
        assert set(pred.scores) == set(pred.components)
        assert all(gain > 0 for gain in pred.scores.values())

    def test_invalid_max_failures(self):
        with pytest.raises(InferenceError):
            FlockInference(DEFAULT_PER_PACKET, max_failures=-1)


class TestPriors:
    def test_higher_prior_blames_more(self):
        # A single mildly-lossy flow: with a generous prior the link is
        # blamed; with a tiny prior the evidence is insufficient.
        observations = [
            FlowObservation(path_set=((0,),), packets_sent=200, bad_packets=4)
        ]
        problem = InferenceProblem.from_observations(observations, 1, 1)
        eager = FlockInference(
            FlockParams(pg=7e-4, pb=6e-3, rho=0.2)
        ).localize(problem)
        skeptical = FlockInference(
            FlockParams(pg=7e-4, pb=6e-3, rho=1e-12)
        ).localize(problem)
        assert eager.components == frozenset({0})
        assert skeptical.components == frozenset()

    def test_device_needs_more_evidence_than_link(self):
        # Same observations, one path with a link and its device: the
        # 5x-log-scale device prior must make Flock prefer the link.
        observations = [
            FlowObservation(path_set=((0, 1),), packets_sent=500, bad_packets=25)
        ] * 3
        problem = InferenceProblem.from_observations(
            observations, n_components=2, n_links=1
        )
        pred = FlockInference(DEFAULT_PER_PACKET).localize(problem)
        assert 0 in pred.components
        assert 1 not in pred.components
