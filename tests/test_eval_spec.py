"""Registry-wide spec tests: every registered experiment must run at
the tiny preset, and every experiment not flagged unshardable must
shard-merge bit-identically in metrics (2 shards == serial), including
the two-phase table1 eval phase fed by a saved calibrate-phase result."""

import pytest

from repro.errors import ExperimentError
from repro.eval.reporting import save_result
from repro.eval.runner import RunnerConfig
from repro.eval.shard import ShardRecorder, ShardReplayer, ShardSpec, merge_payloads
from repro.eval.spec import (
    ExperimentSpec,
    GridPoint,
    ProbeRef,
    ScenarioSpec,
    SchemeRef,
    TopologySpec,
    TraceSpec,
    build_experiment_spec,
    experiment_names,
    get_experiment,
    run_experiment,
    run_spec,
    shardable_experiment_names,
)

#: Columns whose values are wall-clock measurements: fresh on every
#: run, so excluded from the bit-identical comparison (the *metrics*
#: columns must match exactly).
TIMING_COLUMNS = frozenset({"seconds", "build_seconds", "hypotheses_per_second"})


def drop_timings(rows):
    return [
        {k: v for k, v in row.items() if k not in TIMING_COLUMNS}
        for row in rows
    ]


@pytest.fixture(scope="module")
def calibration_file(tmp_path_factory):
    """A saved tiny-preset table1-calibrate result feeding table1-eval."""
    path = tmp_path_factory.mktemp("table1") / "calibration.json"
    save_result(run_experiment("table1-calibrate", preset="tiny"), path)
    return str(path)


def experiment_overrides(name, calibration_file):
    if name in ("table1", "table1-eval"):
        return {"calibration": calibration_file}
    return {}


def run_sharded_experiment(name, n_shards, overrides):
    """Record every shard in-process, then merge through the replayer."""
    payloads = []
    for index in range(n_shards):
        recorder = ShardRecorder(ShardSpec(index, n_shards))
        run_experiment(
            name,
            preset="tiny",
            runner=RunnerConfig(shard=recorder),
            overrides=overrides,
        )
        payloads.append(
            recorder.payload(
                experiment=name, preset="tiny", seed=None,
                scheme=None, overrides=overrides,
            )
        )
    calls, meta = merge_payloads(payloads)
    assert meta["experiment"] == name
    replayer = ShardReplayer(calls)
    result = run_experiment(
        name,
        preset="tiny",
        runner=RunnerConfig(shard=replayer),
        overrides=meta["overrides"],
    )
    replayer.assert_exhausted()
    return result


@pytest.mark.parametrize("name", experiment_names())
def test_registry_experiment_runs_and_shards(name, calibration_file):
    """Serial tiny run for every experiment; serial == 2-shard merge
    for every shardable one."""
    overrides = experiment_overrides(name, calibration_file)
    serial = run_experiment(name, preset="tiny", overrides=overrides)
    assert serial.experiment == name
    assert serial.rows, f"{name} produced no rows at the tiny preset"
    if not get_experiment(name).shardable:
        return
    merged = run_sharded_experiment(name, n_shards=2, overrides=overrides)
    assert drop_timings(merged.rows) == drop_timings(serial.rows)


def test_spec_builders_are_deterministic(calibration_file):
    """Two builds of the same (name, preset, seed, overrides) must be
    identical - sharding relies on every worker and the merge seeing
    the same grid-call sequence."""
    for name in shardable_experiment_names():
        overrides = experiment_overrides(name, calibration_file)
        a = build_experiment_spec(name, preset="tiny", overrides=overrides)
        b = build_experiment_spec(name, preset="tiny", overrides=overrides)
        assert a.points == b.points, name


class TestSpecValidation:
    def test_point_needs_schemes_or_probe(self):
        with pytest.raises(ExperimentError, match="scheme suite or a probe"):
            GridPoint(topology=TopologySpec("standard", {"preset": "tiny"}))

    def test_point_rejects_schemes_and_probe(self):
        with pytest.raises(ExperimentError, match="scheme suite or a probe"):
            GridPoint(
                topology=TopologySpec("standard", {"preset": "tiny"}),
                trace=TraceSpec(seeds=(1,)),
                schemes=(SchemeRef("flock"),),
                probe=ProbeRef("scan-rate"),
            )

    def test_scheme_point_needs_trace(self):
        with pytest.raises(ExperimentError, match="needs a trace spec"):
            GridPoint(
                topology=TopologySpec("standard", {"preset": "tiny"}),
                schemes=(SchemeRef("flock"),),
            )

    def test_traffic_length_must_match_seeds(self):
        with pytest.raises(ExperimentError, match="does not match"):
            TraceSpec(seeds=(1, 2), traffic=("uniform",))

    def test_sampled_scenario_needs_seed(self):
        spec = ScenarioSpec("silent-link-drops", sampled={"n_failures": (1, 3)})
        with pytest.raises(ExperimentError, match="sample_seed"):
            spec.build(2)

    def test_unknown_metric(self):
        with pytest.raises(ExperimentError, match="unknown metric"):
            ExperimentSpec(name="x", description="", metrics=("speed",))

    def test_unknown_topology(self):
        spec = ExperimentSpec(
            name="x",
            description="",
            points=[
                GridPoint(
                    topology=TopologySpec("moebius-strip"),
                    trace=TraceSpec(seeds=(1,)),
                    scenario=ScenarioSpec("no-failure"),
                    schemes=(SchemeRef("flock"),),
                )
            ],
        )
        with pytest.raises(ExperimentError, match="unknown topology"):
            run_spec(spec)

    def test_unknown_probe(self):
        spec = ExperimentSpec(
            name="x",
            description="",
            points=[
                GridPoint(
                    topology=TopologySpec("fig6-example"),
                    probe=ProbeRef("warp-core"),
                )
            ],
        )
        with pytest.raises(ExperimentError, match="unknown probe"):
            run_spec(spec)

    def test_sampled_scenarios_reproduce(self):
        spec = ScenarioSpec(
            "silent-link-drops", sampled={"n_failures": (1, 9)}, sample_seed=7
        )
        a = spec.build(6)
        b = spec.build(6)
        assert a == b
        assert {s.n_failures for s in a} <= set(range(1, 9))


class TestAdHocSpec:
    def test_custom_spec_runs_end_to_end(self):
        """A spec assembled from registry parts (no builder) evaluates."""
        spec = ExperimentSpec(
            name="adhoc",
            description="two schemes on a tiny drop workload",
            points=[
                GridPoint(
                    topology=TopologySpec("fat-tree", {"k": 4}),
                    key={"case": "drops"},
                    scenario=ScenarioSpec(
                        "silent-link-drops",
                        params={"n_failures": 2, "min_rate": 4e-3,
                                "max_rate": 1e-2},
                    ),
                    trace=TraceSpec(seeds=(5, 6), n_passive=800, n_probes=120),
                    schemes=(
                        SchemeRef("flock"),
                        SchemeRef("007", spec="A2"),
                    ),
                )
            ],
        )
        result = run_spec(spec)
        assert [row["scheme"] for row in result.rows] == \
            ["Flock (A1+A2+P)", "007 (A2)"]
        assert all(row["case"] == "drops" for row in result.rows)
        assert all(0.0 <= row["fscore"] <= 1.0 for row in result.rows)
