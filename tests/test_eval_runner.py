"""Tests for the parallel experiment runner (executors, cache, errors)."""

import numpy as np
import pytest

from repro.baselines.b007 import Vote007
from repro.core.flock import FlockInference
from repro.core.params import DEFAULT_PER_PACKET, FlockParams
from repro.errors import ExperimentError, InferenceError
from repro.eval.harness import SchemeSetup, evaluate, evaluate_many
from repro.eval.runner import (
    EXECUTORS,
    RunnerConfig,
    RunnerStats,
    _run_trace_unit,
    attach_trace,
    detach_traces,
    run_grid,
)
from repro.eval.scenarios import make_trace_batch
from repro.simulation.failures import SilentLinkDrops
from repro.telemetry.inputs import TelemetryConfig


class FailingLocalizer:
    """Raises inside the worker; must be picklable for the process pool."""

    def localize(self, problem):
        raise InferenceError("boom in worker")


@pytest.fixture(scope="module")
def traces(small_fat_tree, ft_routing):
    return make_trace_batch(
        small_fat_tree,
        ft_routing,
        [SilentLinkDrops(n_failures=2, min_rate=4e-3, max_rate=1e-2)] * 3,
        base_seed=21,
        n_passive=600,
        n_probes=120,
    )


def suite():
    """A small grid with telemetry-spec sharing: 5 setups, 3 specs."""
    return [
        SchemeSetup("Flock", FlockInference(DEFAULT_PER_PACKET),
                    TelemetryConfig.from_spec("A1+A2+P")),
        SchemeSetup("Flock", FlockInference(DEFAULT_PER_PACKET),
                    TelemetryConfig.from_spec("A2")),
        SchemeSetup("Flock", FlockInference(DEFAULT_PER_PACKET),
                    TelemetryConfig.from_spec("INT")),
        SchemeSetup("007", Vote007(threshold=0.6),
                    TelemetryConfig.from_spec("A2")),
        SchemeSetup("Flock tuned",
                    FlockInference(FlockParams(pg=3e-4, pb=4e-3, rho=5e-4)),
                    TelemetryConfig.from_spec("INT")),
    ]


class TestWorldShipping:
    """The process executor ships the shared PathSpace once per worker
    (pool initializer), not once per task."""

    def test_detached_payload_excludes_path_space(self, traces):
        import pickle

        worlds, payloads = detach_traces(traces)
        assert len(worlds) == 1  # one (topology, routing) pair
        for clone, original in zip(payloads, traces):
            assert clone is not original
            assert clone.topology is None
            assert clone.routing is None
            assert clone.batch.space is None
            payload = pickle.dumps(clone)
            # The per-task payload must not carry the interning space.
            assert b"PathSpace" not in payload
        # ... while the once-per-worker world does.
        assert b"PathSpace" in pickle.dumps(worlds)
        # Detaching leaves the originals untouched.
        for original in traces:
            assert original.batch.space is not None
            assert original.routing is not None

    def test_attach_restores_results(self, traces):
        worlds, payloads = detach_traces(traces)
        setups = suite()
        expected, _, _ = _run_trace_unit(setups, traces[0], use_cache=True)
        clone = attach_trace(payloads[0], worlds)
        got, _, _ = _run_trace_unit(setups, clone, use_cache=True)
        for a, b in zip(expected, got):
            assert a.prediction.components == b.prediction.components
            assert a.metrics == b.metrics

    def test_attach_is_noop_for_regular_traces(self, traces):
        assert attach_trace(traces[0]) is traces[0]


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_matches_serial_trace_for_trace(self, traces, executor):
        serial = run_grid(suite(), traces, RunnerConfig())
        parallel = run_grid(
            suite(), traces, RunnerConfig(executor=executor, jobs=2)
        )
        assert set(serial) == set(parallel)
        for label, expected in serial.items():
            got = parallel[label]
            assert got.accuracy == expected.accuracy
            assert len(got.per_trace) == len(expected.per_trace)
            for a, b in zip(expected.per_trace, got.per_trace):
                assert a.prediction.components == b.prediction.components
                assert a.metrics == b.metrics
                assert a.prediction.log_likelihood == b.prediction.log_likelihood
                if executor == "process":
                    # Problems are not shipped back over IPC.
                    assert b.problem is None
                else:
                    assert b.problem is not None

    def test_evaluate_many_jobs_shorthand(self, traces):
        serial = evaluate_many(suite(), traces)
        parallel = evaluate_many(suite(), traces, jobs=2)
        for label, expected in serial.items():
            assert parallel[label].accuracy == expected.accuracy

    def test_cache_does_not_change_metrics(self, traces):
        cached = run_grid(suite(), traces, RunnerConfig())
        uncached = run_grid(suite(), traces, RunnerConfig(cache=False))
        for label, expected in cached.items():
            assert uncached[label].accuracy == expected.accuracy


class TestProblemCache:
    def test_shared_specs_hit_cache(self, traces):
        stats = RunnerStats()
        run_grid(suite(), traces, RunnerConfig(), stats)
        n = len(traces)
        # 5 setups over 3 distinct specs: 2 hits per trace.
        assert stats.traces_run == n
        assert stats.problems_built == 3 * n
        assert stats.cache_hits == 2 * n

    def test_shared_problem_is_same_object_in_serial(self, traces):
        summaries = run_grid(suite(), traces, RunnerConfig())
        a2_flock = summaries["Flock (A2)"].per_trace
        a2_007 = summaries["007 (A2)"].per_trace
        for ra, rb in zip(a2_flock, a2_007):
            assert ra.problem is rb.problem
            assert ra.build_seconds == rb.build_seconds

    def test_no_cache_builds_every_problem(self, traces):
        stats = RunnerStats()
        run_grid(suite(), traces, RunnerConfig(cache=False), stats)
        assert stats.problems_built == 5 * len(traces)
        assert stats.cache_hits == 0


class TestFailurePropagation:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_worker_failure_raises(self, traces, executor):
        setups = [
            SchemeSetup("Flock", FlockInference(DEFAULT_PER_PACKET),
                        TelemetryConfig.from_spec("A2")),
            SchemeSetup("broken", FailingLocalizer(),
                        TelemetryConfig.from_spec("A2")),
        ]
        config = RunnerConfig(executor=executor, jobs=2)
        with pytest.raises(InferenceError, match="boom in worker"):
            run_grid(setups, traces, config)


class TestValidation:
    def test_duplicate_labels_rejected(self, traces):
        dup = [
            SchemeSetup("Flock", FlockInference(DEFAULT_PER_PACKET),
                        TelemetryConfig.from_spec("A2")),
            SchemeSetup("Flock",
                        FlockInference(FlockParams(pg=3e-4, pb=4e-3, rho=5e-4)),
                        TelemetryConfig.from_spec("A2")),
        ]
        with pytest.raises(ExperimentError, match="duplicate"):
            evaluate_many(dup, traces)

    def test_unknown_executor(self):
        with pytest.raises(ExperimentError):
            RunnerConfig(executor="gpu")

    def test_bad_jobs(self):
        with pytest.raises(ExperimentError):
            RunnerConfig(jobs=0)

    def test_resolve_defaults(self):
        assert RunnerConfig.resolve() == RunnerConfig()
        assert RunnerConfig.resolve(jobs=1).executor == "serial"
        resolved = RunnerConfig.resolve(jobs=3)
        assert resolved.executor == "process" and resolved.jobs == 3
        explicit = RunnerConfig(executor="thread", jobs=5)
        assert RunnerConfig.resolve(explicit, jobs=9) is explicit


class TestSummaries:
    def test_mean_build_and_inference_seconds(self, traces):
        setup = SchemeSetup(
            "Flock", FlockInference(DEFAULT_PER_PACKET),
            TelemetryConfig.from_spec("A1+A2+P"),
        )
        summary = evaluate(setup, traces)
        assert summary.mean_build_seconds > 0
        assert summary.mean_inference_seconds > 0
        expected_build = float(
            np.mean([r.build_seconds for r in summary.per_trace])
        )
        assert summary.mean_build_seconds == pytest.approx(expected_build)

    def test_empty_traces(self):
        setup = SchemeSetup(
            "Flock", FlockInference(DEFAULT_PER_PACKET),
            TelemetryConfig.from_spec("A2"),
        )
        summary = evaluate(setup, [])
        assert summary.per_trace == []
        assert summary.mean_build_seconds == 0.0
        assert summary.mean_inference_seconds == 0.0
        assert summary.accuracy.n_traces == 0
