"""Tests for A1/A2/P/INT observation construction."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.simulation.failures import PER_FLOW
from repro.telemetry import TelemetryConfig, build_observations
from repro.telemetry.inputs import build_observations_from_reports
from repro.telemetry.records import FlowReport
from repro.types import FlowRecord, TelemetryKind


@pytest.fixture()
def sample_records(small_fat_tree, ft_routing):
    topo = small_fat_tree
    h0, h1 = topo.hosts[0], topo.hosts[-1]
    passive_path = ft_routing.host_paths(h0, h1)[0]
    probe_path = ft_routing.probe_paths(h0, topo.cores[0])[0]
    return [
        # A probe with one retransmission.
        FlowRecord(src=h0, dst=topo.cores[0], packets_sent=40, bad_packets=1,
                   path=probe_path, is_probe=True),
        # A flagged passive flow.
        FlowRecord(src=h0, dst=h1, packets_sent=200, bad_packets=3,
                   path=passive_path, rtt_ms=0.4),
        # A clean passive flow with a high RTT.
        FlowRecord(src=h0, dst=h1, packets_sent=100, bad_packets=0,
                   path=passive_path, rtt_ms=25.0),
    ]


class TestKindSelection:
    def test_a1_only_keeps_probes(self, sample_records, small_fat_tree, ft_routing):
        obs = build_observations(
            sample_records, small_fat_tree, ft_routing,
            TelemetryConfig.from_spec("A1"),
        )
        assert len(obs) == 1
        assert obs[0].exact_path
        assert obs[0].kind is TelemetryKind.A1

    def test_a2_keeps_flagged_passive_with_exact_path(
        self, sample_records, small_fat_tree, ft_routing
    ):
        obs = build_observations(
            sample_records, small_fat_tree, ft_routing,
            TelemetryConfig.from_spec("A2"),
        )
        assert len(obs) == 1
        assert obs[0].exact_path
        assert obs[0].bad_packets == 3

    def test_p_keeps_all_passive_with_pathsets(
        self, sample_records, small_fat_tree, ft_routing
    ):
        obs = build_observations(
            sample_records, small_fat_tree, ft_routing,
            TelemetryConfig.from_spec("P"),
        )
        assert len(obs) == 2
        for o in obs:
            assert len(o.path_set) == 4  # cross-pod ECMP fan-out in k=4

    def test_int_reveals_exact_paths_for_everything(
        self, sample_records, small_fat_tree, ft_routing
    ):
        obs = build_observations(
            sample_records, small_fat_tree, ft_routing,
            TelemetryConfig.from_spec("INT"),
        )
        assert len(obs) == 3
        assert all(o.exact_path for o in obs)

    def test_a2_plus_p_deduplicates_flagged(
        self, sample_records, small_fat_tree, ft_routing
    ):
        obs = build_observations(
            sample_records, small_fat_tree, ft_routing,
            TelemetryConfig.from_spec("A2+P"),
        )
        # probe excluded; flagged flow appears once (exact); clean flow
        # appears once (path set).
        assert len(obs) == 2
        exact = [o for o in obs if o.exact_path]
        assert len(exact) == 1
        assert exact[0].bad_packets == 3


class TestAnalysisModes:
    def test_per_flow_transform(self, sample_records, small_fat_tree, ft_routing):
        obs = build_observations(
            sample_records, small_fat_tree, ft_routing,
            TelemetryConfig.from_spec("INT", analysis=PER_FLOW),
        )
        by_bad = sorted((o.bad_packets, o.packets_sent) for o in obs)
        # All flows become (bit, 1); only the 25 ms flow is bad.
        assert by_bad == [(0, 1), (0, 1), (1, 1)]

    def test_custom_rtt_threshold(self, sample_records, small_fat_tree, ft_routing):
        obs = build_observations(
            sample_records, small_fat_tree, ft_routing,
            TelemetryConfig.from_spec(
                "INT", analysis=PER_FLOW, rtt_threshold_ms=30.0
            ),
        )
        assert all(o.bad_packets == 0 for o in obs)


class TestDevicesAndSampling:
    def test_include_devices_toggle(self, sample_records, small_fat_tree, ft_routing):
        with_dev = build_observations(
            sample_records, small_fat_tree, ft_routing,
            TelemetryConfig.from_spec("INT", include_devices=True),
        )
        without = build_observations(
            sample_records, small_fat_tree, ft_routing,
            TelemetryConfig.from_spec("INT", include_devices=False),
        )
        n_links = small_fat_tree.n_links
        assert any(c >= n_links for o in with_dev for p in o.path_set for c in p)
        assert all(c < n_links for o in without for p in o.path_set for c in p)

    def test_passive_sampling(self, small_fat_tree, ft_routing):
        topo = small_fat_tree
        h0, h1 = topo.hosts[0], topo.hosts[-1]
        path = ft_routing.host_paths(h0, h1)[0]
        records = [
            FlowRecord(src=h0, dst=h1, packets_sent=10, bad_packets=0,
                       path=path)
            for _ in range(1000)
        ]
        obs = build_observations(
            records, topo, ft_routing,
            TelemetryConfig.from_spec("P", passive_sampling=0.1),
            np.random.default_rng(0),
        )
        assert 40 < len(obs) < 250


class TestConfig:
    def test_spec_parsing(self):
        config = TelemetryConfig.from_spec("A1+A2+P")
        assert config.kinds == frozenset(
            {TelemetryKind.A1, TelemetryKind.A2, TelemetryKind.PASSIVE}
        )
        assert config.spec == "A1+A2+P"

    def test_bad_spec(self):
        with pytest.raises(TelemetryError):
            TelemetryConfig.from_spec("A3")
        with pytest.raises(TelemetryError):
            TelemetryConfig(kinds=frozenset())

    def test_bad_analysis(self):
        with pytest.raises(TelemetryError):
            TelemetryConfig.from_spec("P", analysis="per_byte")


class TestFromReports:
    def test_pathless_reports_fall_back_to_pathsets(
        self, small_fat_tree, ft_routing
    ):
        topo = small_fat_tree
        h0, h1 = topo.hosts[0], topo.hosts[-1]
        reports = [
            FlowReport(src=h0, dst=h1, packets_sent=50, retransmissions=1,
                       rtt_us=300, path=None),
        ]
        obs = build_observations_from_reports(
            reports, topo, ft_routing, TelemetryConfig.from_spec("P")
        )
        assert len(obs) == 1
        assert not obs[0].exact_path
        # A2 needs a traced path, which this report lacks.
        obs_a2 = build_observations_from_reports(
            reports, topo, ft_routing, TelemetryConfig.from_spec("A2")
        )
        assert obs_a2 == []

    def test_traced_report_used_exactly(self, small_fat_tree, ft_routing):
        topo = small_fat_tree
        h0, h1 = topo.hosts[0], topo.hosts[-1]
        path = ft_routing.host_paths(h0, h1)[0]
        reports = [
            FlowReport(src=h0, dst=h1, packets_sent=50, retransmissions=2,
                       rtt_us=300, path=path),
        ]
        obs = build_observations_from_reports(
            reports, topo, ft_routing, TelemetryConfig.from_spec("INT")
        )
        assert len(obs) == 1
        assert obs[0].path_set == (topo.path_components(path),)
