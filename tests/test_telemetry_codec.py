"""Codec tests: framing, roundtrips, and property-based fuzzing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, TelemetryError
from repro.telemetry import (
    MAX_RECORDS_PER_MESSAGE,
    FlowReport,
    decode_message,
    decode_record,
    encode_message,
    encode_record,
)
from repro.telemetry.records import MAX_PATH_NODES


def sample_report(**overrides):
    defaults = dict(
        src=12, dst=999, packets_sent=1000, retransmissions=3,
        rtt_us=250, is_probe=False, path=(12, 40, 41, 999),
    )
    defaults.update(overrides)
    return FlowReport(**defaults)


class TestRecordValidation:
    def test_retransmissions_bounded(self):
        with pytest.raises(TelemetryError):
            FlowReport(src=0, dst=1, packets_sent=2, retransmissions=3, rtt_us=0)

    def test_path_length_bounded(self):
        with pytest.raises(TelemetryError):
            FlowReport(
                src=0, dst=1, packets_sent=1, retransmissions=0, rtt_us=0,
                path=tuple(range(MAX_PATH_NODES + 1)),
            )

    def test_field_width(self):
        with pytest.raises(TelemetryError):
            FlowReport(src=2 ** 32, dst=1, packets_sent=1,
                       retransmissions=0, rtt_us=0)

    def test_wire_size_matches_paper(self):
        # A full 7-hop traced report is the paper's 52 bytes per flow.
        report = sample_report(path=tuple(range(7)))
        assert len(encode_record(report)) == 52


class TestRoundtrip:
    def test_single_record(self):
        report = sample_report()
        decoded, offset = decode_record(encode_record(report), 0)
        assert decoded == report
        assert offset == len(encode_record(report))

    def test_pathless_record(self):
        report = sample_report(path=None)
        decoded, _ = decode_record(encode_record(report), 0)
        assert decoded.path is None

    def test_message_roundtrip(self):
        reports = [sample_report(src=i) for i in range(10)]
        assert decode_message(encode_message(reports)) == reports

    def test_empty_message(self):
        assert decode_message(encode_message([])) == []

    def test_max_records_fits_udp(self):
        reports = [
            sample_report(path=tuple(range(MAX_PATH_NODES)))
            for _ in range(MAX_RECORDS_PER_MESSAGE)
        ]
        message = encode_message(reports)
        assert len(message) <= 1400
        assert decode_message(message) == reports


class TestFraming:
    def test_bad_magic(self):
        message = bytearray(encode_message([sample_report()]))
        message[0] = ord("X")
        with pytest.raises(CodecError):
            decode_message(bytes(message))

    def test_bad_version(self):
        message = bytearray(encode_message([sample_report()]))
        message[2] = 99
        with pytest.raises(CodecError):
            decode_message(bytes(message))

    def test_truncated(self):
        message = encode_message([sample_report()])
        with pytest.raises(CodecError):
            decode_message(message[:-3])

    def test_checksum_detects_corruption(self):
        message = bytearray(encode_message([sample_report()]))
        message[12] ^= 0xFF  # flip a payload byte
        with pytest.raises(CodecError):
            decode_message(bytes(message))

    def test_short_message(self):
        with pytest.raises(CodecError):
            decode_message(b"FK")


path_strategy = st.one_of(
    st.none(),
    st.lists(
        st.integers(min_value=0, max_value=2 ** 32 - 1),
        min_size=0, max_size=MAX_PATH_NODES,
    ).map(tuple),
)

report_strategy = st.builds(
    lambda src, dst, sent, retx_frac, rtt, probe, path: FlowReport(
        src=src, dst=dst, packets_sent=sent,
        retransmissions=min(sent, retx_frac),
        rtt_us=rtt, is_probe=probe, path=path,
    ),
    src=st.integers(min_value=0, max_value=2 ** 32 - 1),
    dst=st.integers(min_value=0, max_value=2 ** 32 - 1),
    sent=st.integers(min_value=0, max_value=2 ** 32 - 1),
    retx_frac=st.integers(min_value=0, max_value=2 ** 32 - 1),
    rtt=st.integers(min_value=0, max_value=2 ** 32 - 1),
    probe=st.booleans(),
    path=path_strategy,
)


class TestProperties:
    @given(report=report_strategy)
    @settings(max_examples=200, deadline=None)
    def test_record_roundtrip(self, report):
        decoded, _ = decode_record(encode_record(report), 0)
        assert decoded == report

    @given(reports=st.lists(report_strategy, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_message_roundtrip(self, reports):
        assert decode_message(encode_message(reports)) == reports

    @given(garbage=st.binary(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_decode_never_crashes_unexpectedly(self, garbage):
        # Arbitrary bytes must either decode or raise CodecError -
        # nothing else (a collector must survive malformed agents).
        try:
            decode_message(garbage)
        except CodecError:
            pass
