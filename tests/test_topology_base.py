"""Unit tests for the core Topology model."""

import pytest

from repro.errors import TopologyError
from repro.topology.base import Topology, TopologyBuilder
from repro.types import ComponentKind


def tiny_topo():
    #      spine0
    #     /      \
    #  leaf0    leaf1
    #   |  \      |
    #  h0  h1    h2
    return Topology(
        names=["spine0", "leaf0", "leaf1", "h0", "h1", "h2"],
        roles=["spine", "leaf", "leaf", "host", "host", "host"],
        links=[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)],
    )


class TestConstruction:
    def test_basic_counts(self):
        topo = tiny_topo()
        assert topo.n_nodes == 6
        assert topo.n_links == 5
        assert topo.n_components == 11
        assert topo.hosts == (3, 4, 5)
        assert topo.racks == (1, 2)
        assert topo.cores == (0,)

    def test_rejects_mismatched_names_roles(self):
        with pytest.raises(TopologyError):
            Topology(["a"], ["host", "tor"], [])

    def test_rejects_unknown_role(self):
        with pytest.raises(TopologyError):
            Topology(["a"], ["router"], [])

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Topology(["a", "b"], ["tor", "tor"], [(0, 0)])

    def test_rejects_duplicate_link(self):
        with pytest.raises(TopologyError):
            Topology(["a", "b"], ["tor", "tor"], [(0, 1), (1, 0)])

    def test_rejects_dangling_link(self):
        with pytest.raises(TopologyError):
            Topology(["a", "b"], ["tor", "tor"], [(0, 5)])

    def test_host_must_have_one_rack(self):
        with pytest.raises(TopologyError):
            Topology(
                ["t0", "t1", "h"],
                ["tor", "tor", "host"],
                [(0, 2), (1, 2)],
            )


class TestLinks:
    def test_link_id_is_order_insensitive(self):
        topo = tiny_topo()
        assert topo.link_id(0, 1) == topo.link_id(1, 0)

    def test_link_id_missing_raises(self):
        topo = tiny_topo()
        with pytest.raises(TopologyError):
            topo.link_id(3, 5)

    def test_endpoints_roundtrip(self):
        topo = tiny_topo()
        for lid in range(topo.n_links):
            u, v = topo.endpoints(lid)
            assert topo.link_id(u, v) == lid

    def test_device_links(self):
        topo = tiny_topo()
        leaf0_links = set(topo.device_links(1))
        assert leaf0_links == {
            topo.link_id(0, 1), topo.link_id(1, 3), topo.link_id(1, 4)
        }

    def test_switch_switch_links(self):
        topo = tiny_topo()
        fabric = set(topo.switch_switch_links())
        assert fabric == {topo.link_id(0, 1), topo.link_id(0, 2)}


class TestComponents:
    def test_component_kinds(self):
        topo = tiny_topo()
        assert topo.component_kind(0) is ComponentKind.LINK
        assert topo.component_kind(topo.device_component(0)) is ComponentKind.DEVICE
        with pytest.raises(TopologyError):
            topo.component_kind(topo.n_components)

    def test_component_names(self):
        topo = tiny_topo()
        assert topo.component_name(topo.link_id(0, 1)) == "spine0<->leaf0"
        assert topo.component_name(topo.device_component(0)) == "spine0"

    def test_path_components_excludes_hosts(self):
        topo = tiny_topo()
        comps = topo.path_components((3, 1, 0, 2, 5))
        # 4 links + devices leaf0, spine0, leaf1 (hosts excluded)
        assert len(comps) == 7
        assert topo.device_component(3) not in comps
        assert topo.device_component(1) in comps

    def test_path_components_without_devices(self):
        topo = tiny_topo()
        comps = topo.path_components((3, 1, 4), include_devices=False)
        assert comps == tuple(
            sorted((topo.link_id(3, 1), topo.link_id(1, 4)))
        )

    def test_bounce_path_collapses(self):
        topo = tiny_topo()
        one_way = topo.path_components((3, 1, 0))
        bounce = topo.path_components((3, 1, 0, 1, 3))
        assert one_way == bounce


class TestDerived:
    def test_rack_of(self):
        topo = tiny_topo()
        assert topo.rack_of(3) == 1
        assert topo.rack_of(5) == 2
        with pytest.raises(TopologyError):
            topo.rack_of(0)

    def test_hosts_in_rack(self):
        topo = tiny_topo()
        assert topo.hosts_in_rack(1) == (3, 4)

    def test_without_links(self):
        topo = tiny_topo()
        smaller = topo.without_links([topo.link_id(0, 2)])
        assert smaller.n_links == 4
        assert not smaller.has_link(0, 2)
        assert smaller.n_nodes == topo.n_nodes

    def test_is_connected(self):
        topo = tiny_topo()
        assert topo.is_connected()
        # Cutting leaf1's uplink isolates the {leaf1, h2} component.
        cut = topo.without_links([topo.link_id(0, 2)])
        assert not cut.is_connected()

    def test_to_networkx(self):
        graph = tiny_topo().to_networkx()
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 5
        assert graph.nodes[0]["role"] == "spine"


class TestBuilder:
    def test_builds_equivalent_topology(self):
        builder = TopologyBuilder()
        a = builder.add_node("a", "tor")
        b = builder.add_node("b", "tor")
        h = builder.add_node("h", "host")
        builder.add_link(a, b)
        builder.add_link(a, h)
        topo = builder.build()
        assert topo.n_links == 2
        assert builder.node("b") == b

    def test_duplicate_name_rejected(self):
        builder = TopologyBuilder()
        builder.add_node("x", "tor")
        with pytest.raises(TopologyError):
            builder.add_node("x", "host")
