"""Columnar-vs-object pipeline equivalence.

The struct-of-arrays trace pipeline (SpecBatch -> FlowBatch ->
ObservationBatch -> InferenceProblem.from_batch) must be *bit-identical*
to the object pipeline (FlowSpec -> FlowRecord -> FlowObservation ->
from_observations) at fixed seeds: same simulated records, same problem
arrays and indexes, and the same prediction from every registered
scheme.  These tests sweep every registered failure scenario at the
tiny preset.
"""

import numpy as np
import pytest

from repro.core.gibbs import GibbsInference
from repro.core.params import DEFAULT_PER_PACKET
from repro.core.problem import InferenceProblem
from repro.eval.experiments import standard_topology
from repro.eval.harness import build_problem, effective_telemetry
from repro.eval.scenarios import Trace, make_trace
from repro.telemetry.inputs import build_observation_batch
from repro.eval.schemes import make_setup, scheme_names
from repro.routing import EcmpRouting, PathSpace
from repro.simulation import DropRatePlan, FlowLevelSimulator, SilentLinkDrops
from repro.simulation.failures import make_scenario, scenario_names
from repro.simulation.flowsim import _all_path_drop_probs
from repro.telemetry import TelemetryConfig
from repro.topology import fat_tree
from repro.traffic import SpecBatch, UniformTraffic, generate_passive_flows


def _strip_batch(trace: Trace) -> Trace:
    """A records-only clone that forces the object pipeline."""
    return Trace(
        topology=trace.topology,
        routing=trace.routing,
        injection=trace.injection,
        records=trace.records,
        seed=trace.seed,
        meta=dict(trace.meta),
    )


def _assert_problems_identical(col: InferenceProblem, obj: InferenceProblem):
    assert col.flow_paths == obj.flow_paths
    assert list(col.path_table) == list(obj.path_table)
    assert np.array_equal(col.bad_packets, obj.bad_packets)
    assert np.array_equal(col.packets_sent, obj.packets_sent)
    assert np.array_equal(col.weights, obj.weights)
    assert np.array_equal(col.exact, obj.exact)
    assert col.kinds == obj.kinds
    assert col.flows_by_comp == obj.flows_by_comp
    assert col.paths_by_comp == obj.paths_by_comp
    assert col.comps_by_flow == obj.comps_by_flow
    assert col.observed_components == obj.observed_components


@pytest.fixture(scope="module")
def tiny_world():
    topo = standard_topology("tiny")
    return topo, EcmpRouting(topo)


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_problem_identical_across_registered_scenarios(tiny_world, scenario_name):
    topo, routing = tiny_world
    scenario = make_scenario(scenario_name)
    trace = make_trace(
        topo, routing, scenario, seed=42, n_passive=1_200, n_probes=200,
    )
    object_trace = _strip_batch(trace)
    for spec in ("A1+A2+P", "INT", "A2", "A1+P", "P"):
        telemetry = TelemetryConfig.from_spec(spec)
        col = build_problem(trace, telemetry)
        obj = build_problem(object_trace, telemetry)
        _assert_problems_identical(col, obj)


@pytest.mark.parametrize("scenario_name", scenario_names())
@pytest.mark.parametrize("scheme", scheme_names())
def test_scheme_predictions_identical(tiny_world, scenario_name, scheme):
    """Every scheme's prediction is bit-identical across all three
    problem representations: compressed (from_batch), uncompressed
    (from_batch(compressed=False)), and the object pipeline
    (from_observations)."""
    topo, routing = tiny_world
    trace = make_trace(
        topo, routing, make_scenario(scenario_name), seed=7,
        n_passive=1_200, n_probes=200,
    )
    setup = make_setup(scheme)
    col = build_problem(trace, setup.telemetry)
    assert col.compressed
    obs_batch = build_observation_batch(
        trace.batch, effective_telemetry(trace, setup.telemetry),
        np.random.default_rng(trace.seed + 0x5EED),
    )
    unc = InferenceProblem.from_batch(
        obs_batch, topo.n_components, topo.n_links, compressed=False
    )
    assert not unc.compressed
    obj = build_problem(_strip_batch(trace), setup.telemetry)
    pred_col = setup.localizer.localize(col)
    pred_unc = setup.localizer.localize(unc)
    pred_obj = setup.localizer.localize(obj)
    for other in (pred_unc, pred_obj):
        assert pred_col.components == other.components
        assert pred_col.scores == other.scores
        assert pred_col.log_likelihood == other.log_likelihood


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_compressed_problem_views_match_uncompressed(tiny_world, scenario_name):
    """The compressed build's lazy object views expand to exactly the
    uncompressed representation (full projections, first-seen ids)."""
    topo, routing = tiny_world
    trace = make_trace(
        topo, routing, make_scenario(scenario_name), seed=13,
        n_passive=900, n_probes=150,
    )
    telemetry = TelemetryConfig.from_spec("A1+A2+P")
    rng = np.random.default_rng(trace.seed + 0x5EED)
    batch = build_observation_batch(trace.batch, telemetry, rng)
    col = InferenceProblem.from_batch(batch, topo.n_components, topo.n_links)
    rng = np.random.default_rng(trace.seed + 0x5EED)
    batch = build_observation_batch(trace.batch, telemetry, rng)
    unc = InferenceProblem.from_batch(
        batch, topo.n_components, topo.n_links, compressed=False
    )
    assert col.compressed and not unc.compressed
    assert col.n_paths == unc.n_paths
    _assert_problems_identical(col, unc)


def test_gibbs_batched_matches_sequential(tiny_world):
    """Batched sweeps visit the identical chain as the sequential loop."""
    topo, routing = tiny_world
    trace = make_trace(
        topo, routing, SilentLinkDrops(n_failures=2, min_rate=4e-3),
        seed=17, n_passive=1_000, n_probes=150,
    )
    problem = build_problem(trace, TelemetryConfig.from_spec("A1+A2+P"))
    for seed in (0, 1, 2):
        batched = GibbsInference(
            DEFAULT_PER_PACKET, sweeps=12, burn_in=4, seed=seed,
        ).localize(problem)
        sequential = GibbsInference(
            DEFAULT_PER_PACKET, sweeps=12, burn_in=4, seed=seed,
            batch_sweeps=False,
        ).localize(problem)
        assert batched.components == sequential.components
        assert batched.scores == sequential.scores
        assert batched.log_likelihood == sequential.log_likelihood


def test_factored_pair_sets_materialize_to_host_paths(tiny_world):
    """A factored pair set expands to exactly routing.host_paths, and
    its factored component sets expand to the full projections."""
    topo, routing = tiny_world
    space = PathSpace(topo, routing)
    hosts = topo.hosts
    pairs = [(hosts[0], hosts[-1]), (hosts[0], hosts[1])]
    for src, dst in pairs:
        sid = space.pair_set(src, dst)
        assert space.set_is_factored(sid)
        expected = routing.host_paths(src, dst)
        assert space.set_size(sid) == len(expected)
        # member_pids before full materialization
        choice = np.arange(len(expected), dtype=np.int64)
        pids = space.member_pids(sid, choice)
        assert [space.path_nodes(int(p)) for p in pids] == list(expected)
        # full materialization agrees
        assert [
            space.path_nodes(int(p)) for p in space.set_path_ids(sid)
        ] == list(expected)
        for include_devices in (False, True):
            gsid = int(space.set_gsids(
                np.asarray([sid], dtype=np.int64), include_devices
            )[0])
            assert space.comp_set_is_factored(gsid)
            gids = space.comp_set(gsid)
            expected_projs = [
                topo.path_components(p, include_devices) for p in expected
            ]
            assert [space.comp_path(int(g)) for g in gids] == expected_projs


def test_sampled_telemetry_identical(tiny_world):
    topo, routing = tiny_world
    trace = make_trace(
        topo, routing, SilentLinkDrops(n_failures=1), seed=3,
        n_passive=900, n_probes=150,
    )
    for spec in ("INT", "P", "A1+P"):
        telemetry = TelemetryConfig.from_spec(spec, passive_sampling=0.4)
        col = build_problem(trace, telemetry)
        obj = build_problem(_strip_batch(trace), telemetry)
        _assert_problems_identical(col, obj)


def test_simulate_adapter_matches_batch(tiny_world):
    """The object simulate() API rides the batch kernel bit-identically."""
    topo, routing = tiny_world
    rng = np.random.default_rng(11)
    injection = SilentLinkDrops(n_failures=1).inject(topo, rng)
    matrix = UniformTraffic(topo)
    specs = generate_passive_flows(routing, matrix, 400, rng)
    sim = FlowLevelSimulator(topo)

    records = sim.simulate(specs, injection, np.random.default_rng(5))
    space = PathSpace(topo, routing)
    batch = sim.simulate_batch(
        SpecBatch.from_specs(specs, space), injection, np.random.default_rng(5)
    )
    assert batch.records() == records


def test_vectorized_path_drop_probs_bit_identical(tiny_world):
    """multiply.reduceat folds hops exactly like the scalar loop."""
    topo, routing = tiny_world
    rng = np.random.default_rng(0)
    plan = DropRatePlan(topo, rng.uniform(0.0, 0.02, size=topo.n_links))
    space = routing.path_space()
    for host in topo.hosts[:4]:
        for other in topo.hosts[-4:]:
            if host != other:
                space.pair_set(host, other)
    probs = _all_path_drop_probs(space, plan)
    for pid in range(space.n_paths):
        scalar = plan.path_drop_probability(space.path_nodes(pid))
        assert probs[pid] == scalar

    # Hop-less paths (zero links) must read as drop probability 0
    # without corrupting their neighbors' reduceat segments - including
    # a trailing one, whose start index falls off the end of the CSR.
    space.intern_path((topo.hosts[0],))
    probs = _all_path_drop_probs(space, plan)
    assert probs[space.n_paths - 1] == 0.0
    for pid in range(space.n_paths - 1):
        assert probs[pid] == plan.path_drop_probability(space.path_nodes(pid))


def test_drop_plan_memoizes_per_path():
    topo = fat_tree(4)
    rng = np.random.default_rng(1)
    plan = DropRatePlan(topo, rng.uniform(0.0, 0.01, size=topo.n_links))
    u, v = topo.endpoints(0)
    first = plan.path_drop_probability((u, v))
    assert plan.path_drop_probability((u, v)) == first
    assert (u, v) in plan._path_prob_cache
    # A derived plan gets a fresh cache (its rates differ).
    derived = plan.with_rates({0: 0.5})
    assert (u, v) not in derived._path_prob_cache
    assert derived.path_drop_probability((u, v)) != first


def test_gibbs_vector_state_matches_reference(tiny_world):
    """The array-state Gibbs reproduces the reference-chain predictions."""
    import math

    from repro.core.jle import JleState

    topo, routing = tiny_world
    trace = make_trace(
        topo, routing, SilentLinkDrops(n_failures=1, min_rate=4e-3),
        seed=21, n_passive=900, n_probes=150,
    )
    problem = build_problem(trace, TelemetryConfig.from_spec("A1+A2+P"))

    def reference_gibbs(problem, sweeps, burn_in, threshold, seed):
        # The pre-vectorization chain, verbatim: JleState + dict counts.
        rng = np.random.default_rng(seed)
        state = JleState(problem, DEFAULT_PER_PACKET)
        candidates = list(problem.observed_components)
        counts = {comp: 0 for comp in candidates}
        kept = 0
        for sweep in range(sweeps):
            order = rng.permutation(len(candidates))
            for idx in order:
                comp = candidates[idx]
                in_hyp = comp in state.hypothesis
                gain = state.gain(comp)
                log_odds = -gain if in_hyp else gain
                if log_odds >= 0:
                    p = 1.0 / (1.0 + math.exp(-log_odds))
                else:
                    p = math.exp(log_odds) / (1.0 + math.exp(log_odds))
                if (rng.random() < p) != in_hyp:
                    state.flip(comp)
            if sweep >= burn_in:
                kept += 1
                for comp in state.hypothesis:
                    counts[comp] += 1
        marginals = {c: n / kept for c, n in counts.items()}
        return (
            frozenset(c for c, p in marginals.items() if p >= threshold),
            marginals,
        )

    for seed in (0, 1, 2):
        new = GibbsInference(
            DEFAULT_PER_PACKET, sweeps=12, burn_in=4, seed=seed
        ).localize(problem)
        ref_components, ref_scores = reference_gibbs(
            problem, sweeps=12, burn_in=4, threshold=0.5, seed=seed
        )
        assert new.components == ref_components
        assert new.scores == ref_scores
