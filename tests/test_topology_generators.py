"""Tests for the Clos / fat-tree / leaf-spine generators."""

import pytest

from repro.errors import TopologyError
from repro.topology import fat_tree, leaf_spine, paper_simulation_clos, three_tier_clos
from repro.topology import testbed as build_testbed


class TestFatTree:
    def test_k4_structure(self):
        topo = fat_tree(4)
        # k=4: 4 cores, 8 aggs, 8 tors, 16 hosts.
        assert len(topo.cores) == 4
        assert len(topo.aggs) == 8
        assert len(topo.racks) == 8
        assert len(topo.hosts) == 16
        # links: 16 host + 16 tor-agg + 16 agg-core
        assert topo.n_links == 48
        assert topo.is_connected()

    def test_k8_host_count(self):
        topo = fat_tree(8)
        # Classic fat-tree: k^3/4 hosts.
        assert len(topo.hosts) == 8 ** 3 // 4

    def test_all_tors_have_uplinks_to_every_pod_agg(self):
        topo = fat_tree(4)
        for tor in topo.racks:
            agg_neighbors = [
                n for n, _ in topo.neighbors(tor) if topo.role(n) == "agg"
            ]
            assert len(agg_neighbors) == 2

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree(5)

    def test_custom_hosts_per_edge(self):
        topo = fat_tree(4, hosts_per_edge=6)
        assert len(topo.hosts) == 8 * 6


class TestThreeTierClos:
    def test_structure(self):
        topo = three_tier_clos(
            pods=2, tors_per_pod=3, aggs_per_pod=2,
            core_groups=2, cores_per_group=2, hosts_per_tor=4,
        )
        assert len(topo.racks) == 6
        assert len(topo.aggs) == 4
        assert len(topo.cores) == 4
        assert len(topo.hosts) == 24
        # per pod: 3*2 tor-agg + 2*2 agg-core + 3*4 host = 22
        assert topo.n_links == 44
        assert topo.is_connected()

    def test_default_oversubscription(self):
        # hosts_per_tor defaults to 3 * aggs_per_pod (3x oversubscription).
        topo = three_tier_clos(pods=1, tors_per_pod=1, aggs_per_pod=2)
        assert len(topo.hosts) == 6

    def test_invalid_args(self):
        with pytest.raises(TopologyError):
            three_tier_clos(pods=0, tors_per_pod=1, aggs_per_pod=1)
        with pytest.raises(TopologyError):
            three_tier_clos(pods=1, tors_per_pod=1, aggs_per_pod=1,
                            cores_per_group=0)

    def test_paper_scale(self):
        topo = paper_simulation_clos()
        # The paper simulates a ~2500-link Clos.
        assert 2300 <= topo.n_links <= 2700
        assert topo.is_connected()


class TestLeafSpine:
    def test_testbed_matches_paper(self):
        topo = build_testbed()
        # "2 spines, 8 leaf racks and 6 hosts per rack"
        assert len(topo.cores) == 2
        assert len(topo.racks) == 8
        assert len(topo.hosts) == 48
        assert topo.n_links == 8 * 2 + 48

    def test_full_mesh(self):
        topo = leaf_spine(3, 4, 2)
        for leaf in topo.racks:
            spine_neighbors = [
                n for n, _ in topo.neighbors(leaf) if topo.role(n) == "spine"
            ]
            assert len(spine_neighbors) == 3

    def test_invalid(self):
        with pytest.raises(TopologyError):
            leaf_spine(0, 1, 1)
