"""Tests for grid calibration and the section 5.2 selection rule."""

import pytest

from repro.calibration import (
    CalibrationPoint,
    best_at_precision,
    calibrate,
    choose_operating_point,
    iter_grid,
    pareto_front,
    vote007_factory,
)
from repro.errors import CalibrationError
from repro.simulation import SilentLinkDrops
from repro.telemetry import TelemetryConfig
from repro.eval.scenarios import make_trace


def point(precision, recall, **params):
    return CalibrationPoint(params=params, precision=precision, recall=recall)


class TestGrid:
    def test_iter_grid_product(self):
        combos = iter_grid({"a": [1, 2], "b": [10]})
        assert combos == [{"a": 1, "b": 10}, {"a": 2, "b": 10}]

    def test_empty_grid_rejected(self):
        with pytest.raises(CalibrationError):
            iter_grid({})
        with pytest.raises(CalibrationError):
            iter_grid({"a": []})

    def test_calibrate_runs_factory_over_grid(
        self, small_fat_tree, ft_routing
    ):
        traces = [
            make_trace(
                small_fat_tree, ft_routing,
                SilentLinkDrops(n_failures=1, min_rate=5e-3, max_rate=1e-2),
                seed=71, n_passive=1500, n_probes=200,
            )
        ]
        points = calibrate(
            vote007_factory,
            {"threshold": [0.3, 0.9]},
            traces,
            TelemetryConfig.from_spec("A2"),
        )
        assert len(points) == 2
        # A lower threshold can only blame more links: recall is
        # monotone non-increasing in the threshold.
        assert points[0].recall >= points[1].recall

    def test_calibrate_requires_traces(self):
        with pytest.raises(CalibrationError):
            calibrate(
                vote007_factory, {"threshold": [0.5]}, [],
                TelemetryConfig.from_spec("A2"),
            )


class TestSelection:
    def test_paper_rule_prefers_precision(self):
        points = [
            point(0.99, 0.6, tag=1),
            point(0.95, 0.9, tag=2),
            point(0.70, 1.0, tag=3),
        ]
        chosen = choose_operating_point(points, start_precision=0.98)
        assert chosen.params["tag"] == 1

    def test_relaxes_when_recall_too_low(self):
        points = [
            point(0.99, 0.1, tag=1),   # precision fine, recall too low
            point(0.95, 0.9, tag=2),
        ]
        chosen = choose_operating_point(
            points, start_precision=0.98, min_recall=0.25
        )
        assert chosen.params["tag"] == 2

    def test_falls_back_to_best_fscore(self):
        points = [point(0.5, 0.1, tag=1), point(0.4, 0.2, tag=2)]
        chosen = choose_operating_point(points, min_recall=0.25)
        assert chosen.params["tag"] == 2  # higher fscore

    def test_empty_points_rejected(self):
        with pytest.raises(CalibrationError):
            choose_operating_point([])

    def test_best_at_precision(self):
        points = [point(0.99, 0.5), point(0.99, 0.7), point(0.5, 1.0)]
        best = best_at_precision(points, 0.98)
        assert best.recall == 0.7
        assert best_at_precision(points, 0.999) is None

    def test_pareto_front(self):
        points = [
            point(1.0, 0.5, tag=1),
            point(0.9, 0.9, tag=2),
            point(0.8, 0.8, tag=3),   # dominated by tag=2
            point(0.5, 1.0, tag=4),
        ]
        front = pareto_front(points)
        tags = {p.params["tag"] for p in front}
        assert tags == {1, 2, 4}

    def test_fscore_property(self):
        assert point(0.0, 0.0).fscore == 0.0
        assert point(1.0, 1.0).fscore == 1.0
