"""Streaming tentpole invariants.

The two load-bearing equivalences:

* **Window = rebuild.** After any number of append/expire cycles a
  :class:`WindowedProblem`'s problem - arrays, indexes, and every
  registered scheme's prediction - is bit-identical to a fresh
  ``from_batch`` over the retained observation rows.
* **Warm = cold.** A :meth:`VectorJleState.rebase`-ed state carries
  exactly the Δ array a cold build at the same hypothesis would have,
  and the warm local search lands on the cold greedy hypothesis at
  convergence (fixed seeds).

Plus the stream driver itself: gray-drift schedules, healthy twins,
and replay determinism.
"""

import numpy as np
import pytest

from repro.core.flock import FlockInference
from repro.core.flock_fast import VectorJleState, greedy_local_search
from repro.core.gibbs import GibbsInference
from repro.core.problem import InferenceProblem
from repro.core.window import WindowedProblem
from repro.errors import InferenceError, SimulationError
from repro.eval.experiments import standard_topology
from repro.eval.schemes import make_setup, scheme_names
from repro.eval.stream import StreamMonitor, incident_latencies
from repro.routing import EcmpRouting
from repro.simulation.droprate import FAILED_LINK_MIN_RATE, good_link_rates
from repro.simulation.failures import (
    PER_FLOW,
    GrayDrift,
    SilentLinkDrops,
    make_scenario,
    scenario_names,
)
from repro.simulation.stream import healthy_twin, replay_stream
from repro.telemetry.inputs import build_observation_batch

WINDOW = 3
N_CHUNKS = 6


@pytest.fixture(scope="module")
def tiny_world():
    topo = standard_topology("tiny")
    return topo, EcmpRouting(topo)


def _stream_chunks(topo, routing, scenario_name="silent-link-drops", seed=17):
    return list(
        replay_stream(
            topo, routing, make_scenario(scenario_name),
            seed=seed, n_chunks=N_CHUNKS,
            flows_per_chunk=150, probes_per_chunk=40,
        )
    )


def _obs_stream(chunks, telemetry, seed=17):
    return [
        build_observation_batch(
            c.batch, telemetry, np.random.default_rng(seed + 0x5EED + c.index)
        )
        for c in chunks
    ]


def _assert_problems_identical(win: InferenceProblem, ref: InferenceProblem):
    assert win.flow_paths == ref.flow_paths
    assert list(win.path_table) == list(ref.path_table)
    assert np.array_equal(win.bad_packets, ref.bad_packets)
    assert np.array_equal(win.packets_sent, ref.packets_sent)
    assert np.array_equal(win.weights, ref.weights)
    assert np.array_equal(win.exact, ref.exact)
    assert win.kinds == ref.kinds
    assert win.flows_by_comp == ref.flows_by_comp
    assert win.observed_components == ref.observed_components


@pytest.mark.parametrize("scheme", scheme_names())
@pytest.mark.parametrize("compressed", [True, False])
def test_window_matches_rebuild_for_every_scheme(
    tiny_world, scheme, compressed
):
    """After several append/expire cycles the windowed problem and every
    scheme's prediction are bit-identical to a fresh from_batch."""
    topo, routing = tiny_world
    setup = make_setup(scheme)
    chunks = _stream_chunks(topo, routing)
    windowed = WindowedProblem(
        topo.n_components, topo.n_links, window=WINDOW, compressed=compressed
    )
    for cycle, obs in enumerate(_obs_stream(chunks, setup.telemetry)):
        update = windowed.append(obs)
        rebuilt = InferenceProblem.from_batch(
            windowed.retained_observations(),
            topo.n_components, topo.n_links, compressed=compressed,
        )
        _assert_problems_identical(update.problem, rebuilt)
        if cycle < N_CHUNKS - 1:
            continue  # predictions only checked on the final window
        win_pred = setup.localizer.localize(update.problem)
        ref_pred = setup.localizer.localize(rebuilt)
        assert win_pred.components == ref_pred.components
        assert win_pred.scores == ref_pred.scores
        assert win_pred.log_likelihood == ref_pred.log_likelihood


def test_rebased_state_matches_cold_rebuild(tiny_world):
    """Rebased Δ equals a cold state's Δ at the same hypothesis, every
    cycle, and warm local search lands on the cold greedy answer."""
    topo, routing = tiny_world
    setup = make_setup("flock")
    localizer = setup.localizer
    chunks = _stream_chunks(topo, routing)
    windowed = WindowedProblem(topo.n_components, topo.n_links, window=WINDOW)
    state = None
    for obs in _obs_stream(chunks, setup.telemetry):
        update = windowed.append(obs)
        problem = update.problem
        if state is None:
            state = VectorJleState(problem, localizer.params)
        else:
            state = VectorJleState.rebase(
                problem, state,
                update.removed_flows, update.removed_weights,
                update.added_flows, update.added_weights,
            )
            # cold state walked to the carried hypothesis
            cold = VectorJleState(problem, localizer.params)
            for comp in sorted(state.hypothesis):
                cold.flip(comp)
            np.testing.assert_allclose(
                state.delta, cold.delta, rtol=1e-9, atol=1e-9
            )
            assert state.ll == pytest.approx(cold.ll)
        warm_pred = greedy_local_search(
            state, np.asarray(problem.observed_components, dtype=np.int64)
        )
        cold_pred = localizer.localize(problem)
        assert warm_pred.components == cold_pred.components
        assert warm_pred.log_likelihood == pytest.approx(
            cold_pred.log_likelihood
        )


def test_stream_monitor_warm_agrees_with_cold(tiny_world):
    """The monitor's warm steady-state predictions match a cold monitor
    cycle for cycle (greedy converges to the same hypothesis)."""
    topo, routing = tiny_world
    warm = StreamMonitor(topo, scheme="flock", window=WINDOW, seed=17)
    cold = StreamMonitor(
        topo, scheme="flock", window=WINDOW, warm=False, seed=17
    )
    warm_reports = warm.run(_stream_chunks(topo, routing))
    cold_reports = cold.run(_stream_chunks(topo, routing))
    assert warm.warm and not cold.warm
    for w, c in zip(warm_reports, cold_reports):
        assert w.prediction.components == c.prediction.components
        assert w.grouped_flows == c.grouped_flows


def test_stream_monitor_gibbs_warm_runs(tiny_world):
    """Gibbs accepts the rebased state as its initial chain state."""
    from repro.eval.harness import SchemeSetup
    from repro.telemetry.inputs import TelemetryConfig

    topo, routing = tiny_world
    setup = SchemeSetup(
        "flock-gibbs", GibbsInference(), TelemetryConfig.from_spec("A1+A2+P")
    )
    monitor = StreamMonitor(topo, window=2, seed=17, setup=setup)
    assert monitor.warm
    reports = monitor.run(_stream_chunks(topo, routing)[:3])
    assert len(reports) == 3


def test_detection_latency_of_mid_stream_incident(tiny_world):
    """A flap turning on mid-stream is detected and reported with a
    finite onset latency; churn spikes only at hypothesis changes."""
    topo, routing = tiny_world
    chunks = list(
        replay_stream(
            topo, routing, make_scenario("link-flap"),
            seed=7, n_chunks=N_CHUNKS, flows_per_chunk=150,
            probes_per_chunk=40, onset_chunk=2, clear_chunk=5,
        )
    )
    assert all(not c.injection.ground_truth.failed_components
               for c in chunks[:2])
    assert all(c.injection.ground_truth.failed_components
               for c in chunks[2:5])
    monitor = StreamMonitor(topo, scheme="flock", window=WINDOW, seed=7)
    reports = monitor.run(chunks)
    incidents = incident_latencies(reports)
    assert len(incidents) == 1
    inc = incidents[0]
    assert inc["onset_cycle"] == 2 and inc["clear_cycle"] == 5
    assert inc["detected_cycle"] is not None
    assert inc["latency_cycles"] >= 0
    assert inc["latency_seconds"] == pytest.approx(
        reports[inc["detected_cycle"]].t_end - reports[2].t_start
    )


def test_gray_drift_registered_and_drifts():
    assert "gray-drift" in scenario_names()
    topo = standard_topology("tiny")
    scenario = GrayDrift()
    schedule = scenario.inject_schedule(topo, np.random.default_rng(3), 5)
    assert len(schedule) == 5
    base = good_link_rates(topo, np.random.default_rng(3))
    drifting = np.nonzero(schedule[-1].plan.rates != base.rates)[0]
    assert len(drifting) == scenario.n_links
    rates = np.array([inj.plan.rates[drifting] for inj in schedule])
    assert np.all(np.diff(rates, axis=0) >= 0)  # monotone drift
    np.testing.assert_allclose(rates[0], scenario.start_rate)
    np.testing.assert_allclose(rates[-1], scenario.end_rate)
    # ground truth tracks the failed-rate threshold per step
    for inj, step in zip(schedule, rates):
        expect = {
            int(link) for link, rate in zip(drifting, step)
            if rate >= FAILED_LINK_MIN_RATE
        }
        assert set(inj.ground_truth.failed_links) == expect
        assert set(inj.ground_truth.drop_rates) == expect
    assert not schedule[0].ground_truth.failed_components
    assert schedule[-1].ground_truth.failed_components
    # single-shot inject() is the fully-drifted endpoint
    single = scenario.inject(topo, np.random.default_rng(3))
    assert np.array_equal(single.plan.rates, schedule[-1].plan.rates)


def test_default_schedule_repeats_single_injection(tiny_world):
    topo, _ = tiny_world
    scenario = SilentLinkDrops()
    schedule = scenario.inject_schedule(topo, np.random.default_rng(5), 4)
    assert len(schedule) == 4
    assert all(inj is schedule[0] for inj in schedule)
    assert np.array_equal(
        schedule[0].plan.rates,
        scenario.inject(topo, np.random.default_rng(5)).plan.rates,
    )
    with pytest.raises(SimulationError):
        scenario.inject_schedule(topo, np.random.default_rng(5), 0)


def test_healthy_twin_zeroes_fault_state(tiny_world):
    topo, _ = tiny_world
    injection = make_scenario("link-flap").inject(
        topo, np.random.default_rng(9)
    )
    twin = healthy_twin(injection)
    assert not twin.ground_truth.failed_components
    assert not twin.ground_truth.drop_rates
    assert not twin.flapped_links
    assert twin.analysis == injection.analysis == PER_FLOW
    assert twin.latency_model is injection.latency_model
    for link in injection.flapped_links:
        assert twin.plan.rates[link] == 0.0


def test_replay_stream_is_deterministic(tiny_world):
    topo, routing = tiny_world
    first = _stream_chunks(topo, routing, "gray-drift", seed=23)
    second = _stream_chunks(topo, routing, "gray-drift", seed=23)
    for a, b in zip(first, second):
        assert a.t_start == b.t_start and a.t_end == b.t_end
        assert np.array_equal(a.batch.bad, b.batch.bad)
        assert np.array_equal(a.batch.path_set, b.batch.path_set)
        assert np.array_equal(a.batch.t_start, b.batch.t_start)
        assert np.array_equal(a.injection.plan.rates, b.injection.plan.rates)


def test_warm_state_must_match_problem(tiny_world):
    topo, routing = tiny_world
    setup = make_setup("flock")
    obs = _obs_stream(_stream_chunks(topo, routing), setup.telemetry)
    windowed = WindowedProblem(topo.n_components, topo.n_links, window=2)
    first = windowed.append(obs[0]).problem
    state = VectorJleState(first, setup.localizer.params)
    second = windowed.append(obs[1]).problem
    with pytest.raises(InferenceError):
        setup.localizer.localize(second, warm_state=state)
    with pytest.raises(InferenceError):
        GibbsInference().localize(second, initial_state=state)
