"""Tests for the likelihood math (Eq. 1 and its normalized form)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    LikelihoodModel,
    evidence_score,
    evidence_scores,
    normalized_flow_ll,
    normalized_flow_ll_vec,
)
from repro.core.params import FlockParams
from repro.core.problem import InferenceProblem
from repro.errors import InferenceError
from repro.types import FlowObservation

PARAMS = FlockParams(pg=7e-4, pb=6e-3, rho=1e-4)


class TestEvidenceScore:
    def test_lossy_flow_positive(self):
        assert evidence_score(10, 100, PARAMS) > 0

    def test_clean_flow_negative(self):
        assert evidence_score(0, 1000, PARAMS) < 0

    def test_invalid(self):
        with pytest.raises(InferenceError):
            evidence_score(5, 3, PARAMS)

    def test_vector_matches_scalar(self):
        r = np.array([0, 1, 5, 50])
        t = np.array([10, 10, 100, 100])
        vec = evidence_scores(r, t, PARAMS)
        for i in range(len(r)):
            assert vec[i] == pytest.approx(
                evidence_score(int(r[i]), int(t[i]), PARAMS)
            )

    def test_matches_direct_formula(self):
        # s must equal log(P_bad / P_good) of the binomial-free form.
        r, t = 3, 50
        direct = (
            r * math.log(PARAMS.pb) + (t - r) * math.log(1 - PARAMS.pb)
        ) - (
            r * math.log(PARAMS.pg) + (t - r) * math.log(1 - PARAMS.pg)
        )
        assert evidence_score(r, t, PARAMS) == pytest.approx(direct)


class TestNormalizedFlowLL:
    def test_boundaries(self):
        s = 3.7
        assert normalized_flow_ll(0, 4, s) == 0.0
        assert normalized_flow_ll(4, 4, s) == s
        assert normalized_flow_ll(7, 4, s) == s  # clamped

    def test_matches_eq1_directly(self):
        # nll(b) must equal log of Eq. 1 normalized by the all-good case.
        r, t, w, b = 2, 40, 4, 1
        s = evidence_score(r, t, PARAMS)
        lg = PARAMS.pg ** r * (1 - PARAMS.pg) ** (t - r)
        lb = PARAMS.pb ** r * (1 - PARAMS.pb) ** (t - r)
        eq1 = (b / w) * lb + ((w - b) / w) * lg
        assert normalized_flow_ll(b, w, s) == pytest.approx(
            math.log(eq1 / lg)
        )

    def test_monotone_in_b_for_positive_s(self):
        s = 2.0
        values = [normalized_flow_ll(b, 5, s) for b in range(6)]
        assert values == sorted(values)

    def test_monotone_decreasing_for_negative_s(self):
        s = -2.0
        values = [normalized_flow_ll(b, 5, s) for b in range(6)]
        assert values == sorted(values, reverse=True)

    def test_invalid_w(self):
        with pytest.raises(InferenceError):
            normalized_flow_ll(0, 0, 1.0)

    @given(
        b=st.integers(min_value=0, max_value=16),
        w=st.integers(min_value=1, max_value=16),
        s=st.floats(min_value=-80.0, max_value=80.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_vector_matches_scalar(self, b, w, s):
        scalar = normalized_flow_ll(min(b, w), w, s)
        vec = normalized_flow_ll_vec(
            np.array([min(b, w)], dtype=float),
            np.array([w], dtype=float),
            np.array([s]),
        )
        assert vec[0] == pytest.approx(scalar, abs=1e-10)

    @given(
        w=st.integers(min_value=2, max_value=8),
        s=st.floats(min_value=-40.0, max_value=40.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_bounded_by_endpoints(self, w, s):
        for b in range(w + 1):
            value = normalized_flow_ll(b, w, s)
            assert min(0.0, s) - 1e-9 <= value <= max(0.0, s) + 1e-9


def tiny_problem():
    """Three components; two flows with known paths, one ECMP flow."""
    observations = [
        FlowObservation(path_set=((0, 1),), packets_sent=100, bad_packets=4),
        FlowObservation(path_set=((2,),), packets_sent=100, bad_packets=0),
        FlowObservation(
            path_set=((0,), (2,)), packets_sent=50, bad_packets=1
        ),
    ]
    return InferenceProblem.from_observations(
        observations, n_components=3, n_links=3
    )


class TestLikelihoodModel:
    def test_empty_hypothesis_is_zero(self):
        model = LikelihoodModel(tiny_problem(), PARAMS)
        assert model.log_likelihood([]) == pytest.approx(
            0.0
        )  # only the (empty) prior term

    def test_prior_toggle(self):
        model = LikelihoodModel(tiny_problem(), PARAMS)
        with_prior = model.log_likelihood([0])
        without = model.log_likelihood([0], include_prior=False)
        assert with_prior == pytest.approx(
            without + PARAMS.link_prior_gain
        )

    def test_manual_hypothesis_value(self):
        problem = tiny_problem()
        model = LikelihoodModel(problem, PARAMS)
        # Hypothesis {0}: flow0 has its single path failed (b=1, w=1);
        # flow2 has one of two paths failed (b=1, w=2); flow1 untouched.
        s0 = evidence_score(4, 100, PARAMS)
        s2 = evidence_score(1, 50, PARAMS)
        expected = (
            normalized_flow_ll(1, 1, s0)
            + normalized_flow_ll(1, 2, s2)
            + PARAMS.link_prior_gain
        )
        assert model.log_likelihood([0]) == pytest.approx(expected)

    def test_flow_ll_counts_failed_paths(self):
        problem = tiny_problem()
        model = LikelihoodModel(problem, PARAMS)
        # Find the grouped flow with two paths.
        flow = next(
            i for i, fp in enumerate(problem.flow_paths) if len(fp) == 2
        )
        s = model.flow_score(flow)
        assert model.flow_ll(flow, {0, 2}) == pytest.approx(
            normalized_flow_ll(2, 2, s)
        )
