"""Tests for the WRED queue model and the RTT/latency model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import (
    LatencyModel,
    WredConfig,
    WredQueue,
    effective_drop_rate,
    rtt_is_bad,
)
from repro.topology import leaf_spine


class TestWredAnalytic:
    def test_paper_misconfiguration(self):
        # p=1%, w=0: effective rate = p * utilization.
        config = WredConfig(drop_probability=0.01, queue_threshold=0)
        assert effective_drop_rate(config, 0.5) == pytest.approx(0.005)

    def test_threshold_reduces_rate(self):
        shallow = WredConfig(drop_probability=0.01, queue_threshold=0)
        deep = WredConfig(drop_probability=0.01, queue_threshold=3)
        assert effective_drop_rate(deep, 0.5) < effective_drop_rate(shallow, 0.5)

    def test_zero_utilization(self):
        config = WredConfig()
        assert effective_drop_rate(config, 0.0) == 0.0

    def test_invalid_utilization(self):
        with pytest.raises(SimulationError):
            effective_drop_rate(WredConfig(), 1.0)

    def test_invalid_config(self):
        with pytest.raises(SimulationError):
            WredConfig(drop_probability=1.5)
        with pytest.raises(SimulationError):
            WredConfig(queue_threshold=-1)


class TestWredQueueSimulation:
    def test_empirical_matches_analytic(self):
        # The discrete-time queue's measured drop rate should be close
        # to the analytic p * rho^(w+1) substitute used by the flow
        # simulator (the queue is Geo/Geo/1, so "close" not "exact":
        # same order of magnitude, same load trend).
        config = WredConfig(drop_probability=0.2, queue_threshold=0)
        rng = np.random.default_rng(3)
        measured = {}
        for rho in (0.3, 0.7):
            queue = WredQueue(
                config, arrival_rate=rho * 0.05, service_prob=0.05
            )
            assert queue.utilization == pytest.approx(rho)
            measured[rho] = queue.run(1_000_000, rng)
        assert measured[0.7] > measured[0.3]
        for rho, rate in measured.items():
            analytic = effective_drop_rate(config, rho)
            assert rate == pytest.approx(analytic, rel=0.4)

    def test_no_arrivals_no_drops(self):
        queue = WredQueue(WredConfig(), arrival_rate=0.0)
        assert queue.run(1000, np.random.default_rng(0)) == 0.0

    def test_invalid_arrival_rate(self):
        with pytest.raises(SimulationError):
            WredQueue(WredConfig(), arrival_rate=1.0)
        with pytest.raises(SimulationError):
            WredQueue(WredConfig(), arrival_rate=0.1, service_prob=0.0)


class TestLatencyModel:
    def test_flap_flows_spike(self):
        topo = leaf_spine(2, 2, 2)
        model = LatencyModel(flap_spike_prob=1.0, congestion_spike_prob=0.0)
        rng = np.random.default_rng(0)
        flapped = frozenset({topo.switch_switch_links()[0]})
        u, v = topo.endpoints(next(iter(flapped)))
        paths = [(u, v)] * 50 + [
            (topo.hosts[0], topo.rack_of(topo.hosts[0]))
        ] * 50
        rtts = model.sample_rtts(topo, paths, flapped, rng)
        assert all(rtt_is_bad(r) for r in rtts[:50])
        assert not any(rtt_is_bad(r) for r in rtts[50:])

    def test_congestion_spikes_rare(self):
        topo = leaf_spine(2, 2, 2)
        model = LatencyModel(congestion_spike_prob=0.01)
        rng = np.random.default_rng(1)
        host = topo.hosts[0]
        paths = [(host, topo.rack_of(host))] * 5000
        rtts = model.sample_rtts(topo, paths, frozenset(), rng)
        bad = sum(1 for r in rtts if rtt_is_bad(r))
        assert 0 < bad < 200

    def test_threshold_boundary(self):
        assert not rtt_is_bad(10.0)
        assert rtt_is_bad(10.0001)

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            LatencyModel(base_rtt_ms=0.0)
        with pytest.raises(SimulationError):
            LatencyModel(flap_spike_prob=1.5)
        with pytest.raises(SimulationError):
            LatencyModel(spike_low_ms=100.0, spike_high_ms=50.0)
