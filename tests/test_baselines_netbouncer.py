"""Tests for the NetBouncer coordinate-descent baseline."""

import pytest

from repro.baselines.netbouncer import NetBouncer
from repro.core.problem import InferenceProblem
from repro.errors import InferenceError
from repro.types import FlowObservation


def problem_from(observations, n_components=10, n_links=10):
    return InferenceProblem.from_observations(
        observations, n_components, n_links
    )


class TestEstimation:
    def test_clean_links_estimated_healthy(self):
        observations = [
            FlowObservation(((0, 1),), 1000, 0),
            FlowObservation(((1, 2),), 1000, 0),
        ]
        pred = NetBouncer(regularization=0.0).localize(
            problem_from(observations)
        )
        assert pred.components == frozenset()
        for link in (0, 1, 2):
            assert pred.scores[link] == pytest.approx(0.0, abs=1e-6)

    def test_isolates_lossy_link(self):
        # Link 1 is shared by two lossy paths; links 0 and 2 also appear
        # on clean paths, so the solver must pin the loss on link 1.
        observations = [
            FlowObservation(((0, 1),), 10_000, 100),
            FlowObservation(((1, 2),), 10_000, 100),
            FlowObservation(((0,),), 10_000, 0),
            FlowObservation(((2,),), 10_000, 0),
        ]
        pred = NetBouncer(
            regularization=0.0, drop_threshold=5e-3
        ).localize(problem_from(observations))
        assert pred.components == frozenset({1})
        assert pred.scores[1] == pytest.approx(0.01, rel=0.15)

    def test_estimates_drop_rate_magnitude(self):
        observations = [FlowObservation(((4,),), 50_000, 250)]
        pred = NetBouncer(regularization=0.0, drop_threshold=1e-3).localize(
            problem_from(observations)
        )
        assert pred.scores[4] == pytest.approx(0.005, rel=0.1)

    def test_regularizer_denoises(self):
        # A single stray drop out of 2000 packets: the x(1-x) penalty
        # should snap the estimate to healthy.
        observations = [FlowObservation(((0,),), 2000, 1)]
        noisy = NetBouncer(regularization=0.0, drop_threshold=3e-4).localize(
            problem_from(observations)
        )
        snapped = NetBouncer(regularization=0.5, drop_threshold=3e-4).localize(
            problem_from(observations)
        )
        assert noisy.components == frozenset({0})
        assert snapped.components == frozenset()

    def test_ignores_pathset_flows(self):
        observations = [FlowObservation(((0,), (1,)), 100, 50)]
        pred = NetBouncer().localize(problem_from(observations))
        assert pred.components == frozenset()


class TestDeviceRule:
    def test_device_blamed_when_links_fail(self):
        # Links 0 and 1 both lossy; both paths cross device 5.
        observations = [
            FlowObservation(((0, 5),), 10_000, 100),
            FlowObservation(((1, 5),), 10_000, 100),
        ]
        pred = NetBouncer(
            regularization=0.0, drop_threshold=5e-3, device_frac=0.9
        ).localize(problem_from(observations, n_components=6, n_links=5))
        assert 5 in pred.components

    def test_device_spared_when_minority_fails(self):
        observations = [
            FlowObservation(((0, 5),), 10_000, 100),
            FlowObservation(((1, 5),), 10_000, 0),
            FlowObservation(((2, 5),), 10_000, 0),
        ]
        pred = NetBouncer(
            regularization=0.0, drop_threshold=5e-3, device_frac=0.5
        ).localize(problem_from(observations, n_components=6, n_links=5))
        assert 5 not in pred.components


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(InferenceError):
            NetBouncer(regularization=-1.0)
        with pytest.raises(InferenceError):
            NetBouncer(drop_threshold=0.0)
        with pytest.raises(InferenceError):
            NetBouncer(device_frac=0.0)
        with pytest.raises(InferenceError):
            NetBouncer(max_sweeps=0)

    def test_empty_problem(self):
        pred = NetBouncer().localize(problem_from([]))
        assert pred.components == frozenset()
