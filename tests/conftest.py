"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import InferenceProblem
from repro.routing.ecmp import EcmpRouting
from repro.simulation.failures import SilentLinkDrops
from repro.telemetry.inputs import TelemetryConfig, build_observations
from repro.topology import fat_tree, testbed, three_tier_clos
from repro.eval.scenarios import make_trace


@pytest.fixture(scope="session")
def small_fat_tree():
    return fat_tree(4)


@pytest.fixture(scope="session")
def small_clos():
    return three_tier_clos(
        pods=2, tors_per_pod=2, aggs_per_pod=2,
        core_groups=2, cores_per_group=1, hosts_per_tor=2,
    )


@pytest.fixture(scope="session")
def testbed_topo():
    return testbed()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def ft_routing(small_fat_tree):
    return EcmpRouting(small_fat_tree)


@pytest.fixture(scope="session")
def drop_trace(small_fat_tree, ft_routing):
    """A deterministic silent-drop trace on the small fat tree.

    Failed links get solidly-detectable drop rates (>= 0.4%; the paper's
    Fig. 3 shows all schemes degrade below that) so localization tests
    can assert exact recovery.
    """
    return make_trace(
        small_fat_tree,
        ft_routing,
        SilentLinkDrops(n_failures=2, min_rate=4e-3, max_rate=1e-2),
        seed=99,
        n_passive=2500,
        n_probes=400,
    )


@pytest.fixture(scope="session")
def drop_problem(drop_trace):
    """An A1+A2+P inference problem built from the drop trace."""
    topo = drop_trace.topology
    obs = build_observations(
        drop_trace.records,
        topo,
        drop_trace.routing,
        TelemetryConfig.from_spec("A1+A2+P"),
        np.random.default_rng(5),
    )
    return InferenceProblem.from_observations(
        obs, n_components=topo.n_components, n_links=topo.n_links
    )
