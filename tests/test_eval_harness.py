"""Tests for trace generation and the scheme-running harness."""

import numpy as np
import pytest

from repro.core.flock import FlockInference
from repro.core.params import DEFAULT_PER_PACKET
from repro.errors import ExperimentError
from repro.eval.harness import (
    SchemeSetup,
    build_problem,
    evaluate,
    evaluate_many,
    run_on_trace,
)
from repro.eval.scenarios import (
    SKEWED,
    UNIFORM,
    make_matrix,
    make_trace,
    make_trace_batch,
)
from repro.simulation import LinkFlap, SilentLinkDrops
from repro.simulation.failures import PER_FLOW
from repro.telemetry import TelemetryConfig
from repro.topology import fat_tree


class TestScenarios:
    def test_make_trace_deterministic(self, small_fat_tree, ft_routing):
        kwargs = dict(n_passive=500, n_probes=100)
        a = make_trace(small_fat_tree, ft_routing,
                       SilentLinkDrops(n_failures=1), seed=5, **kwargs)
        b = make_trace(small_fat_tree, ft_routing,
                       SilentLinkDrops(n_failures=1), seed=5, **kwargs)
        assert a.ground_truth == b.ground_truth
        assert a.records == b.records

    def test_trace_counts(self, small_fat_tree, ft_routing):
        trace = make_trace(
            small_fat_tree, ft_routing, SilentLinkDrops(n_failures=1),
            seed=6, n_passive=300, n_probes=50,
        )
        probes = [r for r in trace.records if r.is_probe]
        assert len(trace.records) == 350
        assert len(probes) == 50

    def test_batch_alternates_traffic(self, small_fat_tree, ft_routing):
        traces = make_trace_batch(
            small_fat_tree, ft_routing,
            [SilentLinkDrops(n_failures=1)] * 4,
            base_seed=9, n_passive=200, n_probes=0,
        )
        patterns = [t.meta["traffic"] for t in traces]
        assert patterns == [UNIFORM, SKEWED, UNIFORM, SKEWED]

    def test_unknown_traffic_pattern(self, small_fat_tree, rng):
        with pytest.raises(ExperimentError):
            make_matrix(small_fat_tree, "bimodal", rng)


class TestHarness:
    def test_build_problem_counts(self, drop_trace):
        problem = build_problem(drop_trace, TelemetryConfig.from_spec("INT"))
        assert problem.total_flows == len(drop_trace.records)

    def test_per_flow_trace_overrides_analysis(self, small_fat_tree, ft_routing):
        trace = make_trace(
            small_fat_tree, ft_routing, LinkFlap(n_links=1),
            seed=8, n_passive=400, n_probes=0,
        )
        assert trace.analysis == PER_FLOW
        problem = build_problem(trace, TelemetryConfig.from_spec("INT"))
        # Per-flow analysis: every observation is a single-packet bit.
        assert problem.packets_sent.max() == 1

    def test_run_on_trace_scores_prediction(self, drop_trace):
        setup = SchemeSetup(
            name="Flock",
            localizer=FlockInference(DEFAULT_PER_PACKET),
            telemetry=TelemetryConfig.from_spec("A1+A2+P"),
        )
        result = run_on_trace(setup, drop_trace)
        assert result.metrics.precision == 1.0
        assert result.metrics.recall == 1.0
        assert result.inference_seconds > 0

    def test_evaluate_many_labels(self, drop_trace):
        setups = [
            SchemeSetup(
                name="Flock",
                localizer=FlockInference(DEFAULT_PER_PACKET),
                telemetry=TelemetryConfig.from_spec(spec),
            )
            for spec in ("A2", "INT")
        ]
        summaries = evaluate_many(setups, [drop_trace])
        assert set(summaries) == {"Flock (A2)", "Flock (INT)"}
        for summary in summaries.values():
            assert summary.accuracy.n_traces == 1

    def test_evaluate_many_rejects_duplicate_labels(self, drop_trace):
        setups = [
            SchemeSetup(
                name="Flock",
                localizer=FlockInference(DEFAULT_PER_PACKET),
                telemetry=TelemetryConfig.from_spec("A2"),
            )
            for _ in range(2)
        ]
        with pytest.raises(ExperimentError, match="duplicate"):
            evaluate_many(setups, [drop_trace])

    def test_summary_separates_build_and_inference_time(self, drop_trace):
        setup = SchemeSetup(
            name="Flock",
            localizer=FlockInference(DEFAULT_PER_PACKET),
            telemetry=TelemetryConfig.from_spec("A1+A2+P"),
        )
        summary = evaluate(setup, [drop_trace])
        result = summary.per_trace[0]
        assert summary.mean_build_seconds == result.build_seconds
        assert summary.mean_inference_seconds == result.inference_seconds
        assert summary.mean_build_seconds > 0
