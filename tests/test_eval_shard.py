"""Tests for the shard layer: codec round-trips, shard determinism,
merge validation, and the CLI worker/merge path."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.baselines.b007 import Vote007
from repro.core.flock import FlockInference
from repro.core.params import DEFAULT_PER_PACKET
from repro.errors import ExperimentError
from repro.eval.harness import SchemeSetup, evaluate
from repro.eval.runner import RunnerConfig, run_grid
from repro.eval.scenarios import make_trace_batch
from repro.eval.serialize import (
    eval_summary_from_wire,
    eval_summary_to_wire,
    prediction_from_wire,
    prediction_to_wire,
    trace_metrics_from_wire,
    trace_metrics_to_wire,
    trace_result_from_wire,
    trace_result_to_wire,
)
from repro.eval.shard import (
    ShardRecorder,
    ShardReplayer,
    ShardSpec,
    merge_payloads,
    merge_shards,
    run_sharded,
    shard_bounds,
)
from repro.eval.metrics import TraceMetrics
from repro.simulation.failures import SilentLinkDrops
from repro.telemetry.inputs import TelemetryConfig
from repro.types import Prediction

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def traces(small_fat_tree, ft_routing):
    return make_trace_batch(
        small_fat_tree,
        ft_routing,
        [SilentLinkDrops(n_failures=2, min_rate=4e-3, max_rate=1e-2)] * 5,
        base_seed=33,
        n_passive=600,
        n_probes=120,
    )


def suite():
    return [
        SchemeSetup("Flock", FlockInference(DEFAULT_PER_PACKET),
                    TelemetryConfig.from_spec("A1+A2+P")),
        SchemeSetup("Flock", FlockInference(DEFAULT_PER_PACKET),
                    TelemetryConfig.from_spec("A2")),
        SchemeSetup("007", Vote007(threshold=0.6),
                    TelemetryConfig.from_spec("A2")),
    ]


def assert_metrics_identical(serial, merged):
    """Bit-identical metrics + predictions (timings are fresh per run)."""
    assert set(serial) == set(merged)
    for label, expected in serial.items():
        got = merged[label]
        assert got.accuracy == expected.accuracy, label
        assert len(got.per_trace) == len(expected.per_trace)
        for a, b in zip(expected.per_trace, got.per_trace):
            assert a.prediction == b.prediction
            assert a.metrics == b.metrics


class TestShardBounds:
    @pytest.mark.parametrize("n_items", [0, 1, 2, 5, 16, 17])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    def test_contiguous_balanced_cover(self, n_items, n_shards):
        bounds = shard_bounds(n_items, n_shards)
        assert len(bounds) == n_shards
        assert bounds[0][0] == 0 and bounds[-1][1] == n_items
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_spec_bounds_match(self):
        for i in range(3):
            assert ShardSpec(i, 3).bounds(7) == shard_bounds(7, 3)[i]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            shard_bounds(4, 0)
        with pytest.raises(ExperimentError):
            ShardSpec(2, 2)
        with pytest.raises(ExperimentError):
            ShardSpec(-1, 2)


class TestCodec:
    def test_trace_metrics_round_trip(self):
        metrics = TraceMetrics(precision=1 / 3, recall=2 / 7)
        wire = json.loads(json.dumps(trace_metrics_to_wire(metrics)))
        assert trace_metrics_from_wire(wire) == metrics

    @pytest.mark.parametrize("scores", [None, {}, {3: 0.1 + 0.2, 41: -7.25}])
    def test_prediction_round_trip(self, scores):
        prediction = Prediction(
            components=frozenset({3, 41}),
            scores=scores,
            log_likelihood=-123.456789012345,
            hypotheses_scanned=9001,
        )
        wire = json.loads(json.dumps(prediction_to_wire(prediction)))
        assert prediction_from_wire(wire) == prediction

    def test_empty_prediction_round_trip(self):
        wire = json.loads(json.dumps(prediction_to_wire(Prediction.empty())))
        assert prediction_from_wire(wire) == Prediction.empty()

    def test_trace_result_drops_problem(self, traces):
        setup = suite()[0]
        summary = evaluate(setup, traces[:1])
        result = summary.per_trace[0]
        assert result.problem is not None
        wire = json.loads(json.dumps(trace_result_to_wire(result)))
        back = trace_result_from_wire(wire)
        assert back.problem is None
        assert back.prediction == result.prediction
        assert back.metrics == result.metrics
        assert back.build_seconds == result.build_seconds
        assert back.inference_seconds == result.inference_seconds

    def test_eval_summary_round_trip(self, traces):
        setup = suite()[0]
        summary = evaluate(setup, traces[:2])
        wire = json.loads(json.dumps(eval_summary_to_wire(summary)))
        back = eval_summary_from_wire(wire)
        assert back.setup_label == summary.setup_label
        assert back.accuracy == summary.accuracy
        assert back.mean_inference_seconds == summary.mean_inference_seconds
        assert back.mean_build_seconds == summary.mean_build_seconds
        for a, b in zip(summary.per_trace, back.per_trace):
            assert a.prediction == b.prediction
            assert a.metrics == b.metrics

    @pytest.mark.parametrize(
        "decoder",
        [trace_metrics_from_wire, prediction_from_wire,
         trace_result_from_wire, eval_summary_from_wire],
    )
    def test_malformed_payloads_rejected(self, decoder):
        with pytest.raises(ExperimentError):
            decoder({"nope": 1})

    @pytest.mark.parametrize(
        "payload",
        [
            ["0.5", 0.5],                     # string where number expected
            [0.5, True],                      # bool is not a metric
        ],
    )
    def test_non_numeric_metrics_rejected(self, payload):
        with pytest.raises(ExperimentError, match="must be a number"):
            trace_metrics_from_wire(payload)

    def test_non_numeric_result_fields_rejected(self):
        good = trace_result_to_wire(
            # A minimal hand-built result, no evaluation needed.
            trace_result_from_wire({
                "p": {"c": [], "s": None, "ll": 0.0, "hs": 0},
                "m": [1.0, 1.0], "b": 0.1, "i": 0.2,
            })
        )
        bad = dict(good)
        bad["b"] = "0.1"
        with pytest.raises(ExperimentError, match="build_seconds"):
            trace_result_from_wire(bad)
        bad = dict(good)
        bad["p"] = dict(good["p"], hs="many")
        with pytest.raises(ExperimentError, match="hypotheses_scanned"):
            trace_result_from_wire(bad)
        bad = dict(good)
        bad["p"] = dict(good["p"], c=["x"])
        with pytest.raises(ExperimentError, match="component id"):
            trace_result_from_wire(bad)
        bad = dict(good)
        bad["p"] = dict(good["p"], s=[[1]])
        with pytest.raises(ExperimentError, match="pairs"):
            trace_result_from_wire(bad)
        bad = dict(good)
        bad["p"] = dict(good["p"], s=[[1, "x"]])
        with pytest.raises(ExperimentError, match="score value"):
            trace_result_from_wire(bad)

    def test_non_numeric_summary_fields_rejected(self):
        good = {"label": "x (A2)", "t": [], "a": [1.0, 1.0, 1.0, 1],
                "mi": 0.1, "mb": 0.2}
        assert eval_summary_from_wire(good).setup_label == "x (A2)"
        for key, value in (("mi", "0.1"), ("label", 3), ("t", "oops")):
            with pytest.raises(ExperimentError):
                eval_summary_from_wire({**good, key: value})


class TestShardDeterminism:
    @pytest.fixture(scope="class")
    def serial(self, traces):
        return run_grid(suite(), traces, RunnerConfig())

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 7])
    def test_any_shard_count_matches_serial(self, traces, serial, n_shards):
        # n_shards=7 > n_traces=5 exercises empty shards too.
        assert_metrics_identical(serial, run_sharded(suite(), traces, n_shards))

    def test_any_merge_order_matches_serial(self, traces, serial):
        recorders = []
        for index in range(3):
            recorder = ShardRecorder(ShardSpec(index, 3))
            run_grid(suite(), traces, RunnerConfig(shard=recorder))
            recorders.append(recorder)
        payloads = [r.payload() for r in recorders]
        for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0], [2, 1, 0]):
            merged = merge_shards(
                suite(), traces, [payloads[i] for i in order]
            )
            assert_metrics_identical(serial, merged)

    def test_subprocess_shards_match_serial(self, traces, serial):
        merged = run_sharded(suite(), traces, 2, shard_jobs=2)
        assert_metrics_identical(serial, merged)

    def test_shard_results_are_json_serializable(self, traces):
        recorder = ShardRecorder(ShardSpec(0, 2))
        run_grid(suite(), traces, RunnerConfig(shard=recorder))
        payload = json.loads(json.dumps(recorder.payload()))
        assert payload["format"] == "flock-shard-v1"
        assert all(call["units"] for call in payload["calls"])

    def test_composes_with_process_executor(self, traces, serial):
        merged = run_sharded(
            suite(), traces, 2, RunnerConfig(executor="process", jobs=2)
        )
        assert_metrics_identical(serial, merged)


class TestMergeValidation:
    @pytest.fixture(scope="class")
    def payloads(self, traces):
        out = []
        for index in range(2):
            recorder = ShardRecorder(ShardSpec(index, 2))
            run_grid(suite(), traces, RunnerConfig(shard=recorder))
            out.append(recorder.payload(experiment="demo", preset="ci", seed=1))
        return out

    def test_empty_merge_rejected(self):
        with pytest.raises(ExperimentError, match="no shard payloads"):
            merge_payloads([])

    def test_incomplete_shard_set_rejected(self, payloads):
        with pytest.raises(ExperimentError, match="incomplete or duplicated"):
            merge_payloads(payloads[:1])

    def test_duplicated_shard_rejected(self, payloads):
        with pytest.raises(ExperimentError, match="incomplete or duplicated"):
            merge_payloads([payloads[0], payloads[0]])

    def test_mismatched_meta_rejected(self, payloads):
        other = dict(payloads[1])
        other["seed"] = 999
        with pytest.raises(ExperimentError, match="disagree on 'seed'"):
            merge_payloads([payloads[0], other])

    def test_coverage_gap_rejected(self, payloads):
        tampered = json.loads(json.dumps(payloads[1]))
        tampered["calls"][0]["units"].pop()
        with pytest.raises(ExperimentError, match="incomplete shard coverage"):
            merge_payloads([payloads[0], tampered])

    def test_wrong_format_rejected(self, payloads):
        bad = dict(payloads[0])
        bad["format"] = "something-else"
        with pytest.raises(ExperimentError, match="not a flock-shard"):
            merge_payloads([bad, payloads[1]])

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda p: p.pop("shard_index"),
            lambda p: p.update(shard_index="zero"),
            lambda p: p.pop("calls"),
            lambda p: p.update(calls={"not": "a list"}),
            lambda p: p["calls"][0].pop("units"),
            lambda p: p["calls"][0]["units"].append(["bad-idx", []]),
            lambda p: p["calls"][0]["units"].append([0]),
            lambda p: p["calls"][0]["units"].append([0, 5]),
        ],
    )
    def test_structurally_malformed_payload_rejected(self, payloads, corrupt):
        # Truncated or hand-edited shard files must fail as
        # ExperimentError (clean CLI error), never TypeError/KeyError.
        tampered = json.loads(json.dumps(payloads[0]))
        corrupt(tampered)
        with pytest.raises(ExperimentError):
            merge_payloads([tampered, payloads[1]])

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ExperimentError, match="must be an object"):
            merge_payloads([["not", "a", "dict"]])

    def test_zero_trace_merge_rejected(self):
        # Every shard recorded zero-trace grids: merging must refuse to
        # report metrics instead of claiming a vacuous perfect score.
        payload = ShardRecorder(ShardSpec(0, 1)).payload()
        payload["calls"] = [{"labels": ["x (A2)"], "n_traces": 0, "units": []}]
        with pytest.raises(ExperimentError, match="no evaluated traces"):
            merge_payloads([payload])

    def test_replay_shape_mismatch_rejected(self, traces, payloads):
        wrong_setups = suite()[:1]
        with pytest.raises(ExperimentError, match="shard replay mismatch"):
            merge_shards(wrong_setups, traces, payloads)

    def test_replay_exhaustion_rejected(self, traces, payloads):
        calls, _meta = merge_payloads(payloads)
        replayer = ShardReplayer(calls)
        config = RunnerConfig(shard=replayer)
        run_grid(suite(), traces, config)
        with pytest.raises(ExperimentError, match="replay exhausted"):
            run_grid(suite(), traces, config)

    def test_unconsumed_calls_rejected(self, traces, payloads):
        # The opposite direction: shards recorded more grid calls than
        # the (since-edited) driver replays; silence would mean a
        # complete-looking but partial merged result.
        extra = [json.loads(json.dumps(p)) for p in payloads]
        for payload in extra:
            payload["calls"].append(payload["calls"][0])
        with pytest.raises(ExperimentError, match="replay incomplete"):
            merge_shards(suite(), traces, extra)

    def test_nested_sharding_rejected(self, traces):
        config = RunnerConfig(shard=ShardRecorder(ShardSpec(0, 2)))
        with pytest.raises(ExperimentError, match="cannot nest"):
            run_sharded(suite(), traces, 2, config)


class TestCliValidation:
    def test_shards_requires_index_and_out(self, capsys):
        from repro.cli import main

        assert main(["run", "fig2", "--shards", "2"]) == 2
        assert "requires --shard-index" in capsys.readouterr().err

    def test_shard_flags_require_shards(self, capsys):
        from repro.cli import main

        assert main(["run", "fig2", "--shard-index", "0"]) == 2
        assert "only valid with --shards" in capsys.readouterr().err

    def test_unshardable_experiment_rejected(self, capsys, tmp_path):
        from repro.cli import main

        code = main([
            "run", "table1", "--shards", "2", "--shard-index", "0",
            "--out", str(tmp_path / "s.json"),
        ])
        assert code == 2
        assert "cannot be sharded" in capsys.readouterr().err

    def test_merge_rejects_non_shard_file(self, capsys, tmp_path):
        from repro.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "flock-trace-v1"}))
        assert main(["merge", str(bogus)]) == 2
        assert "not a flock-shard" in capsys.readouterr().err

    def test_merge_rejects_unshardable_experiment_fast(self, capsys, tmp_path):
        # Hand-crafted shard files naming a no-runner experiment must
        # fail before any (possibly minutes-long) re-execution starts.
        from repro.cli import main

        shard = tmp_path / "fig4c.json"
        shard.write_text(json.dumps({
            "format": "flock-shard-v1", "shard_index": 0, "n_shards": 1,
            "calls": [], "experiment": "fig4c", "preset": "ci", "seed": None,
        }))
        assert main(["merge", str(shard)]) == 2
        assert "not shardable" in capsys.readouterr().err

    def test_merge_rejects_unreadable_file(self, capsys, tmp_path):
        # The CLI contract: package errors print `repro-flock: error:`
        # and exit 2, never a traceback.
        from repro.cli import main

        garbled = tmp_path / "garbled.json"
        garbled.write_text("not json at all")
        assert main(["merge", str(garbled)]) == 2
        assert "cannot read shard file" in capsys.readouterr().err
        assert main(["merge", str(tmp_path / "missing.json")]) == 2
        assert "cannot read shard file" in capsys.readouterr().err
        binary = tmp_path / "binary.json"
        binary.write_bytes(b"\xff\xfe\x00\x01")
        assert main(["merge", str(binary)]) == 2
        assert "cannot read shard file" in capsys.readouterr().err


class TestCliEndToEnd:
    """The acceptance path: fig2 split into 2 OS-process shards, merged
    via the CLI, bit-identical (metrics) to the serial run."""

    def _cli(self, *argv, cwd):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            cwd=cwd, env=env,
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_fig2_two_process_shards_merge_bit_identical(self, tmp_path):
        from repro.eval.experiments import fig2_tradeoff
        from repro.eval.reporting import load_result

        for index in range(2):
            out = self._cli(
                "run", "fig2", "--preset", "ci",
                "--shards", "2", "--shard-index", str(index),
                "--out", f"s{index}.json",
                cwd=tmp_path,
            )
            assert f"shard {index + 1}/2 of fig2" in out
        self._cli(
            "merge", "s0.json", "s1.json", "--out", "merged.json",
            cwd=tmp_path,
        )
        merged = load_result(tmp_path / "merged.json")
        serial = fig2_tradeoff(preset="ci")
        assert merged.experiment == "fig2"
        assert merged.rows == serial.rows
