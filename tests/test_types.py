"""Tests for the shared value types."""

import pytest

from repro.types import (
    FlowObservation,
    FlowRecord,
    GroundTruth,
    Prediction,
    validate_probability,
)


class TestFlowRecord:
    def test_loss_rate(self):
        record = FlowRecord(src=0, dst=1, packets_sent=100, bad_packets=5,
                            path=(0, 1))
        assert record.loss_rate == 0.05

    def test_empty_flow_loss_rate(self):
        record = FlowRecord(src=0, dst=1, packets_sent=0, bad_packets=0,
                            path=(0, 1))
        assert record.loss_rate == 0.0

    def test_bad_bounded_by_sent(self):
        with pytest.raises(ValueError):
            FlowRecord(src=0, dst=1, packets_sent=3, bad_packets=4, path=(0, 1))

    def test_negative_packets(self):
        with pytest.raises(ValueError):
            FlowRecord(src=0, dst=1, packets_sent=-1, bad_packets=0, path=(0, 1))


class TestFlowObservation:
    def test_exact_path_flag(self):
        single = FlowObservation(path_set=((0, 1),), packets_sent=1,
                                 bad_packets=0)
        multi = FlowObservation(path_set=((0,), (1,)), packets_sent=1,
                                bad_packets=0)
        assert single.exact_path
        assert not multi.exact_path

    def test_needs_a_path(self):
        with pytest.raises(ValueError):
            FlowObservation(path_set=(), packets_sent=1, bad_packets=0)

    def test_bad_bounded(self):
        with pytest.raises(ValueError):
            FlowObservation(path_set=((0,),), packets_sent=1, bad_packets=2)


class TestPredictionAndTruth:
    def test_empty_prediction(self):
        assert Prediction.empty().components == frozenset()

    def test_ground_truth_union(self):
        truth = GroundTruth(
            failed_links=frozenset({1}), failed_devices=frozenset({9})
        )
        assert truth.failed_components == frozenset({1, 9})
        assert truth.has_failures
        assert not GroundTruth().has_failures


class TestValidateProbability:
    def test_accepts_bounds(self):
        assert validate_probability(0.0, "p") == 0.0
        assert validate_probability(1.0, "p") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_probability(1.2, "p")
        with pytest.raises(ValueError):
            validate_probability(float("nan"), "p")
