"""Tests for ECMP link equivalence classes (Fig. 5c machinery)."""

import numpy as np

from repro.routing.ecmp import EcmpRouting
from repro.topology import (
    leaf_spine,
    link_equivalence_classes,
    omit_random_links,
    theoretical_max_precision,
)
from repro.topology.equivalence import class_of, mean_class_size


class TestEquivalenceClasses:
    def test_leaf_spine_uplinks_grouped_per_leaf(self):
        # In a symmetric 2-spine leaf-spine fabric, the two uplinks of a
        # leaf participate identically in every ECMP path set.
        topo = leaf_spine(2, 4, 2)
        routing = EcmpRouting(topo)
        classes = link_equivalence_classes(topo, routing)
        by_link = {link: group for group in classes for link in group}
        for leaf in topo.racks:
            uplinks = sorted(
                lid for n, lid in topo.neighbors(leaf)
                if topo.role(n) == "spine"
            )
            assert by_link[uplinks[0]] == by_link[uplinks[1]]
            assert set(uplinks) <= set(by_link[uplinks[0]])

    def test_classes_partition_fabric_links(self):
        topo = leaf_spine(2, 4, 2)
        classes = link_equivalence_classes(topo, EcmpRouting(topo))
        seen = [link for group in classes for link in group]
        assert sorted(seen) == sorted(topo.switch_switch_links())
        assert len(seen) == len(set(seen))

    def test_irregularity_shrinks_classes(self):
        topo = leaf_spine(4, 6, 2)
        base_classes = link_equivalence_classes(topo, EcmpRouting(topo))
        degraded, _ = omit_random_links(
            topo, 0.2, np.random.default_rng(3)
        )
        degraded_classes = link_equivalence_classes(
            degraded, EcmpRouting(degraded)
        )
        assert mean_class_size(degraded_classes) <= mean_class_size(base_classes)


class TestTheoreticalMaxPrecision:
    def test_no_failures(self):
        assert theoretical_max_precision([(0, 1)], []) == 1.0

    def test_singleton_class(self):
        classes = [(0,), (1, 2)]
        assert theoretical_max_precision(classes, [0]) == 1.0

    def test_pair_class(self):
        classes = [(1, 2)]
        assert theoretical_max_precision(classes, [1]) == 0.5

    def test_multiple_failures_union(self):
        classes = [(0, 1), (2, 3, 4)]
        # Failing 0 and 2 forces blaming {0,1} and {2,3,4}: 2/5.
        assert theoretical_max_precision(classes, [0, 2]) == 2 / 5

    def test_class_of_fallback(self):
        assert class_of([(0, 1)], 7) == (7,)
        assert class_of([(0, 1)], 1) == (0, 1)
