"""Tests for Sherlock/Ferret, plain and JLE-accelerated."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import PARAMS, random_problems
from repro.baselines.sherlock import SherlockFerret
from repro.core.model import LikelihoodModel
from repro.core.problem import InferenceProblem
from repro.errors import InferenceError
from repro.types import FlowObservation


def brute_force(problem, params, k):
    """Reference MLE over all hypotheses with <= k failures."""
    model = LikelihoodModel(problem, params)
    comps = range(problem.n_components)
    best, best_ll = frozenset(), 0.0
    for size in range(1, k + 1):
        for hyp in combinations(comps, size):
            ll = model.log_likelihood(hyp)
            if ll > best_ll:
                best, best_ll = frozenset(hyp), ll
    return best, best_ll


class TestCorrectness:
    @given(problem=random_problems())
    @settings(max_examples=25, deadline=None)
    def test_plain_matches_brute_force(self, problem):
        pred = SherlockFerret(PARAMS, max_failures=2).localize(problem)
        expected, expected_ll = brute_force(problem, PARAMS, 2)
        assert pred.log_likelihood == pytest.approx(expected_ll, abs=1e-7)
        if expected_ll > 1e-9:
            model = LikelihoodModel(problem, PARAMS)
            assert model.log_likelihood(pred.components) == pytest.approx(
                expected_ll, abs=1e-7
            )

    @given(problem=random_problems())
    @settings(max_examples=25, deadline=None)
    def test_jle_matches_plain(self, problem):
        plain = SherlockFerret(PARAMS, max_failures=2).localize(problem)
        for engine in ("fast", "reference"):
            jle = SherlockFerret(
                PARAMS, max_failures=2, use_jle=True, engine=engine
            ).localize(problem)
            assert jle.log_likelihood == pytest.approx(
                plain.log_likelihood, abs=1e-7
            )

    def test_k1_picks_best_single(self):
        observations = [
            FlowObservation(((0,),), 1000, 30),
            FlowObservation(((1,),), 1000, 5),
        ]
        problem = InferenceProblem.from_observations(observations, 2, 2)
        pred = SherlockFerret(PARAMS, max_failures=1).localize(problem)
        assert pred.components == frozenset({0})

    def test_k2_finds_pair(self):
        observations = [
            FlowObservation(((0,),), 1000, 30),
            FlowObservation(((1,),), 1000, 30),
            FlowObservation(((2,),), 1000, 0),
        ]
        problem = InferenceProblem.from_observations(observations, 3, 3)
        for use_jle in (False, True):
            pred = SherlockFerret(
                PARAMS, max_failures=2, use_jle=use_jle
            ).localize(problem)
            assert pred.components == frozenset({0, 1})

    def test_candidate_restriction(self):
        observations = [
            FlowObservation(((0,),), 1000, 30),
            FlowObservation(((1,),), 1000, 30),
        ]
        problem = InferenceProblem.from_observations(observations, 2, 2)
        pred = SherlockFerret(
            PARAMS, max_failures=1, candidates=[1]
        ).localize(problem)
        assert pred.components == frozenset({1})


class TestAccounting:
    def test_plain_scan_count(self):
        observations = [FlowObservation(((0, 1, 2),), 100, 5)]
        problem = InferenceProblem.from_observations(observations, 3, 3)
        pred = SherlockFerret(PARAMS, max_failures=2).localize(problem)
        # 1 empty + 3 singles + 3 pairs.
        assert pred.hypotheses_scanned == 7

    def test_empty_problem(self):
        problem = InferenceProblem.from_observations([], 5, 5)
        pred = SherlockFerret(PARAMS).localize(problem)
        assert pred.components == frozenset()

    def test_validation(self):
        with pytest.raises(InferenceError):
            SherlockFerret(PARAMS, max_failures=0)
        with pytest.raises(InferenceError):
            SherlockFerret(PARAMS, engine="quantum")
