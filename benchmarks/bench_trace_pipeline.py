"""Trace-construction benchmarks: columnar vs object pipeline.

The columnar pipeline (SpecBatch -> FlowBatch -> ObservationBatch ->
``InferenceProblem.from_batch``) must beat the object pipeline
(FlowSpec -> FlowRecord -> FlowObservation -> ``from_observations``)
on the full simulate -> telemetry -> problem path while producing a
bit-identical problem (asserted here on a spot check; the exhaustive
sweep lives in ``tests/test_columnar_equivalence.py``).

``benchmarks/run_benchmarks.py`` measures the same pair standalone and
records the headline speedup in ``BENCH_<label>.json``.
"""

import numpy as np
import pytest

from repro.core.problem import InferenceProblem
from repro.eval.experiments import standard_topology
from repro.eval.scenarios import make_matrix, make_trace
from repro.routing import EcmpRouting, PathSpace
from repro.simulation import FlowLevelSimulator, SilentLinkDrops
from repro.telemetry.inputs import (
    TelemetryConfig,
    build_observation_batch,
    build_observations,
)
from repro.traffic import generate_passive_flows
from repro.traffic.probes import a1_probe_plan

N_PASSIVE = 20_000
N_PROBES = 2_000


@pytest.fixture(scope="module")
def world():
    topo = standard_topology("ci")
    routing = EcmpRouting(topo)
    telemetry = TelemetryConfig.from_spec("A1+A2+P")
    scenario = SilentLinkDrops(n_failures=3, min_rate=4e-3, max_rate=1e-2)
    # Warm the shared PathSpace: experiments amortize interning across
    # their whole trace batch, so steady state is what we measure.
    # The object arm gets its own persistent space for the same reason
    # (neither arm is charged fresh-interning costs the other
    # amortizes).
    make_trace(topo, routing, scenario, seed=1,
               n_passive=N_PASSIVE, n_probes=N_PROBES)
    object_space = PathSpace(topo, routing)
    return topo, routing, telemetry, scenario, object_space


def _columnar(topo, routing, telemetry, scenario, object_space, seed):
    trace = make_trace(topo, routing, scenario, seed=seed,
                       n_passive=N_PASSIVE, n_probes=N_PROBES)
    batch = build_observation_batch(
        trace.batch, telemetry, np.random.default_rng(5)
    )
    return InferenceProblem.from_batch(batch, topo.n_components, topo.n_links)


def _object(topo, routing, telemetry, scenario, object_space, seed):
    rng = np.random.default_rng(seed)
    injection = scenario.inject(topo, rng)
    matrix = make_matrix(topo, "uniform", rng)
    specs = list(generate_passive_flows(routing, matrix, N_PASSIVE, rng))
    specs.extend(a1_probe_plan(topo, routing, N_PROBES, rng))
    records = FlowLevelSimulator(topo).simulate(
        specs, injection, rng, space=object_space
    )
    observations = build_observations(
        records, topo, routing, telemetry, np.random.default_rng(5)
    )
    return InferenceProblem.from_observations(
        observations, topo.n_components, topo.n_links
    )


def test_trace_build_columnar(benchmark, world):
    problem = benchmark(_columnar, *world, 7)
    assert problem.total_flows == N_PASSIVE + N_PROBES


def test_trace_build_object(benchmark, world):
    problem = benchmark(_object, *world, 7)
    assert problem.total_flows == N_PASSIVE + N_PROBES


def test_pipelines_agree_and_columnar_wins(world):
    """Shape check: identical problems, columnar measurably faster."""
    import time

    t0 = time.perf_counter()
    col = _columnar(*world, 9)
    t1 = time.perf_counter()
    obj = _object(*world, 9)
    t2 = time.perf_counter()
    assert col.flow_paths == obj.flow_paths
    assert list(col.path_table) == list(obj.path_table)
    assert np.array_equal(col.weights, obj.weights)
    # Loose bound for CI noise; the committed BENCH_*.json records the
    # real (>=5x at the large preset) number.
    assert (t1 - t0) < (t2 - t1)
