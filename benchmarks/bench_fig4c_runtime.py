"""Fig. 4c - inference runtime: Sherlock vs greedy-only vs JLE-only vs
Flock, across topology sizes.

Paper shape: Flock is orders of magnitude faster than Sherlock, and the
gap *widens* with topology size; each optimization alone (greedy
without JLE; Sherlock+JLE) sits between Flock and plain Sherlock.
"""

from repro.eval.experiments import fig4c_runtime

from _common import run_once


def _times(result, scheme):
    return {
        row["k"]: row["seconds"]
        for row in result.rows
        if row["scheme"] == scheme
    }


def test_fig4c_runtime_ablation(benchmark, show):
    result = run_once(benchmark, fig4c_runtime, preset="ci", seed=23)
    show(result, columns=["servers", "k", "scheme", "seconds", "estimated"])

    sherlock = _times(result, "sherlock")
    greedy_only = _times(result, "flock-greedy-only")
    jle_only = _times(result, "flock-jle-only")
    flock = _times(result, "flock")
    ks = sorted(flock)
    largest = ks[-1]

    # Ordering at the largest size: Flock fastest, Sherlock slowest,
    # single-optimization arms in between.
    assert flock[largest] <= greedy_only[largest] * 1.5
    assert greedy_only[largest] < sherlock[largest]
    assert jle_only[largest] < sherlock[largest]

    # The Flock-vs-Sherlock gap is large and does not shrink with scale
    # (the paper's >10^4x claim is this trend extended to 88K links;
    # millisecond-level timings at the smallest size are noisy, hence
    # the tolerance factor).
    speedups = [sherlock[k] / flock[k] for k in ks]
    assert speedups[-1] > 50
    assert speedups[-1] > speedups[0] * 0.5
    # Sherlock's absolute cost explodes with size while Flock stays
    # interactive.
    assert sherlock[largest] / sherlock[ks[0]] > 10
    assert flock[largest] < 5.0
