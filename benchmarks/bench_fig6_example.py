"""Fig. 6 (appendix) - the worked example.

Paper shape: on the 5-link, 5-flow micro-scenario, Flock returns
exactly the failed link (I2<->D2) while 007's votes concentrate on the
shared middle link (I1<->I2).
"""

from repro.eval.experiments import fig6_worked_example

from _common import run_once


def test_fig6_worked_example(benchmark, show):
    result = run_once(benchmark, fig6_worked_example)
    show(result)

    by_scheme = {row["scheme"]: row for row in result.rows}
    assert by_scheme["Flock"]["correct_only"]
    assert by_scheme["007"]["predicted"] == ["I1<->I2"]
