"""Fig. 7 / Appendix A - agent and collector scaling.

The paper measures agent CPU vs data rate and a collector handling 8K
agent connections/sec.  Here we benchmark the same pipeline stages:
record encode, agent aggregation+export, collector ingest, and the UDP
loopback path; throughput must comfortably exceed the report rates the
simulated traces produce.
"""

import time

import pytest

from repro.telemetry import (
    Collector,
    InMemoryTransport,
    TelemetryAgent,
    UdpCollectorServer,
    UdpTransport,
    decode_message,
    encode_message,
)
from repro.telemetry.records import FlowReport
from repro.types import FlowRecord


def _reports(n):
    return [
        FlowReport(src=i, dst=i + 1, packets_sent=100, retransmissions=1,
                   rtt_us=300, path=(i, 7, 8, i + 1))
        for i in range(n)
    ]


def _records(n):
    return [
        FlowRecord(src=i, dst=i + 1, packets_sent=100, bad_packets=0,
                   path=(i, 7, 8, i + 1), rtt_ms=0.3)
        for i in range(n)
    ]


def test_codec_encode_throughput(benchmark):
    batch = _reports(25)
    result = benchmark(encode_message, batch)
    assert decode_message(result) == batch


def test_codec_decode_throughput(benchmark):
    message = encode_message(_reports(25))
    decoded = benchmark(decode_message, message)
    assert len(decoded) == 25


def test_agent_export_throughput(benchmark):
    records = _records(2000)

    def run():
        transport = InMemoryTransport()
        agent = TelemetryAgent(transport, reveal_paths=True)
        agent.observe(records)
        agent.flush()
        return agent.exported_reports

    exported = benchmark(run)
    assert exported == 2000


def test_collector_ingest_throughput(benchmark):
    messages = [encode_message(_reports(25)) for _ in range(80)]

    def run():
        collector = Collector()
        for message in messages:
            collector.ingest(message)
        return collector.pending_reports

    ingested = benchmark(run)
    assert ingested == 80 * 25


def test_udp_loopback_rate(benchmark, show):
    """Messages/sec over the real UDP loopback path (paper: the
    multicore collector handles 8K connections/sec)."""

    def run():
        collector = Collector()
        n_messages = 400
        with UdpCollectorServer(collector) as server:
            transport = UdpTransport(*server.address)
            agent = TelemetryAgent(transport, reveal_paths=True)
            agent.observe(_records(n_messages * 25))
            agent.flush()
            transport.close()
            deadline = time.time() + 10.0
            while (collector.messages_ingested < n_messages
                   and time.time() < deadline):
                time.sleep(0.005)
        return collector.messages_ingested

    ingested = benchmark.pedantic(run, rounds=1, iterations=1)
    # UDP may drop a few datagrams under burst; most must arrive.
    assert ingested > 300
