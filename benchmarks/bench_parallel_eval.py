"""Parallel evaluation runner vs the legacy serial rebuild-per-scheme path.

Two workloads at ``ci`` preset:

* the Fig. 2 scheme grid (8 schemes over 5 distinct telemetry specs),
  where the per-trace problem cache removes 3 redundant builds per
  trace and the shared path memo removes repeated path lookups;
* a Fig. 8a-style calibration fan-out (16 Flock settings sharing one
  telemetry spec), where the legacy path rebuilt the identical problem
  16 times per trace - the trial-fan-out case the runner exists for.

Both must produce bit-identical metrics under every executor; the
fan-out must also show a multiple-x wall-clock win over legacy serial.
"""

import time

from repro.core.flock import FlockInference
from repro.core.params import FlockParams
from repro.eval.experiments import (
    ExperimentResult,
    silent_drop_traces,
    standard_scheme_suite,
)
from repro.eval.harness import SchemeSetup
from repro.eval.runner import RunnerConfig, RunnerStats, run_grid
from repro.telemetry.inputs import TelemetryConfig

from _common import run_once


def _grid_seconds(setups, traces, config, stats=None):
    t0 = time.perf_counter()
    summaries = run_grid(setups, traces, config, stats)
    return time.perf_counter() - t0, summaries


def _comparison_rows(timings):
    legacy = timings["legacy (serial, no cache)"]
    return [
        {"runner": name, "seconds": seconds, "speedup": legacy / seconds}
        for name, seconds in timings.items()
    ]


def test_scheme_grid_cache_and_equivalence(show):
    """Fig. 2 grid: cache counts are exact, all executors bit-identical."""
    setups = standard_scheme_suite()
    traces = silent_drop_traces("ci", seed=7, n_traces=4)
    run_grid(setups, traces[:1], RunnerConfig())  # warm-up

    legacy_stats = RunnerStats()
    legacy_seconds, legacy = _grid_seconds(
        setups, traces, RunnerConfig(cache=False), legacy_stats
    )
    cached_stats = RunnerStats()
    cached_seconds, cached = _grid_seconds(
        setups, traces, RunnerConfig(), cached_stats
    )
    thread_seconds, threaded = _grid_seconds(
        setups, traces, RunnerConfig(executor="thread", jobs=2)
    )
    process_seconds, processed = _grid_seconds(
        setups, traces, RunnerConfig(executor="process", jobs=2)
    )
    show(
        ExperimentResult(
            experiment="parallel-eval/scheme-grid",
            description="Fig. 2 grid wall-clock by runner configuration",
            rows=_comparison_rows({
                "legacy (serial, no cache)": legacy_seconds,
                "serial + problem cache": cached_seconds,
                "thread pool (2) + cache": thread_seconds,
                "process pool (2) + cache": process_seconds,
            }),
        )
    )

    # 8 schemes over 5 distinct telemetry specs -> 3 redundant builds
    # per trace, all eliminated by the cache.
    n = len(traces)
    assert legacy_stats.problems_built == 8 * n
    assert cached_stats.problems_built == 5 * n
    assert cached_stats.cache_hits == 3 * n

    # Every configuration must agree bit-for-bit on the metrics.
    for label, summary in legacy.items():
        for other in (cached, threaded, processed):
            assert other[label].accuracy == summary.accuracy, label


def test_calibration_fanout_speedup(benchmark, show):
    """16 Flock settings, one telemetry spec: the cache wins outright."""
    telemetry = TelemetryConfig.from_spec("A1+A2+P")
    setups = [
        SchemeSetup(
            f"Flock pg={pg:.0e} pb={pb:.0e}",
            FlockInference(FlockParams(pg=pg, pb=pb, rho=5e-4)),
            telemetry,
        )
        for pg in (1e-4, 3e-4, 5e-4, 7e-4)
        for pb in (2e-3, 4e-3, 6e-3, 1e-2)
    ]
    traces = silent_drop_traces("ci", seed=7, n_traces=4)
    run_grid(setups, traces[:1], RunnerConfig())  # warm-up

    legacy_seconds, legacy = _grid_seconds(
        setups, traces, RunnerConfig(cache=False)
    )
    stats = RunnerStats()
    cached_seconds, cached = run_once(
        benchmark, _grid_seconds, setups, traces, RunnerConfig(), stats
    )
    show(
        ExperimentResult(
            experiment="parallel-eval/calibration-fanout",
            description="16-setting parameter sweep, legacy vs cached runner",
            rows=_comparison_rows({
                "legacy (serial, no cache)": legacy_seconds,
                "serial + problem cache": cached_seconds,
            }),
        )
    )

    # One build per trace instead of sixteen...
    n = len(traces)
    assert stats.problems_built == n
    assert stats.cache_hits == 15 * n
    # ...with identical metrics...
    for label, summary in legacy.items():
        assert cached[label].accuracy == summary.accuracy, label
    # ...and a wall-clock win far beyond timer noise (measured 4-7x on
    # a single-core CI box; assert a conservative 2x).
    assert cached_seconds * 2 < legacy_seconds, (
        f"cached runner ({cached_seconds:.2f}s) should be >=2x faster "
        f"than legacy serial ({legacy_seconds:.2f}s) on a shared-spec sweep"
    )
