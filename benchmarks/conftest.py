"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure or table of the paper at "ci"
scale, prints the rows (so ``pytest benchmarks/ --benchmark-only`` output
can be eyeballed against the paper), and asserts the figure's headline
*shape* - who wins, roughly by how much - rather than absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import InferenceProblem
from repro.eval.reporting import render_result
from repro.eval.scenarios import make_trace
from repro.routing import EcmpRouting
from repro.simulation import SilentLinkDrops
from repro.telemetry import TelemetryConfig, build_observations
from repro.topology import fat_tree


@pytest.fixture(scope="session")
def drop_problem():
    """A mid-size A1+A2+P problem for the kernel micro-benchmarks."""
    topo = fat_tree(6)
    routing = EcmpRouting(topo)
    trace = make_trace(
        topo, routing,
        SilentLinkDrops(n_failures=3, min_rate=4e-3, max_rate=1e-2),
        seed=99, n_passive=8000, n_probes=1000,
    )
    observations = build_observations(
        trace.records, topo, routing,
        TelemetryConfig.from_spec("A1+A2+P"),
        np.random.default_rng(5),
    )
    return InferenceProblem.from_observations(
        observations, topo.n_components, topo.n_links
    )


@pytest.fixture()
def show(capsys):
    """Print an experiment result table, bypassing pytest capture."""

    def _show(result, columns=None):
        with capsys.disabled():
            print()
            print(render_result(result, columns))

    return _show
