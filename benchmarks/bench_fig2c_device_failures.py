"""Fig. 2c - silent device failures.

Paper shape: Flock (INT) reaches ~100% recall vs NetBouncer (INT)'s
80%; Flock (A2) beats 007 (fscore 0.97 vs 0.76).
"""

from repro.eval.experiments import fig2c_device_failures

from _common import by_scheme, run_once


def test_fig2c_device_failures(benchmark, show):
    result = run_once(benchmark, fig2c_device_failures, preset="ci", seed=11)
    show(result)

    rows = by_scheme(result)
    assert rows["Flock (INT)"]["recall"] >= rows["NetBouncer (INT)"]["recall"]
    assert rows["Flock (A2)"]["fscore"] > rows["007 (A2)"]["fscore"]
    # Device traces fail a random fraction of links at random rates
    # (some below the detectability floor), so CI-scale recall is lower
    # than the paper's 400K-flow runs - but must remain clearly useful.
    assert rows["Flock (INT)"]["recall"] > 0.6
    assert rows["Flock (INT)"]["fscore"] > rows["NetBouncer (INT)"]["fscore"]
