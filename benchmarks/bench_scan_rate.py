"""Section 7.8 - Flock's hypothesis scan rate.

The paper reports ~3.5M hypotheses scanned in 17 s at 88K links / 9.5M
flows (C++, 40 cores).  At CI scale the absolute rate differs; the
check is that inference completes in interactive time and the scan rate
is far beyond what exhaustive search could deliver.
"""

from repro.eval.experiments import scan_rate

from _common import run_once


def test_scan_rate(benchmark, show):
    result = run_once(benchmark, scan_rate, preset="ci", seed=53)
    show(result)

    row = result.rows[0]
    assert row["seconds"] < 60.0
    assert row["hypotheses_per_second"] > 1_000
    # The Δ array prices n neighbors per greedy step: scanned must be a
    # multiple of the component count.
    assert row["hypotheses_scanned"] % row["components"] == 0
