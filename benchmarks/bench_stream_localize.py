#!/usr/bin/env python
"""Streaming steady-state cycle benchmark -> BENCH_stream.json.

Measures what one monitor cycle costs once the stream is warm, in two
arms over the identical chunk sequence:

* ``stream_cycle_incremental_warm`` - the streaming path: fold the new
  chunk into the :class:`WindowedProblem` (append + expire + grouped
  merge), rebase the previous cycle's :class:`VectorJleState` with the
  window's flow deltas, and re-localize with the warm local search.
* ``stream_cycle_rebuild_cold`` - the batch path the stream replaces:
  ``InferenceProblem.from_batch`` over the window's full retained rows
  plus a cold Flock localization (full Δ initialization).

Telemetry construction is identical in both arms and excluded from the
timings.  ``derived.stream_cycle_speedup`` (cold mean / warm mean) is
the headline number; the large preset holds the same 100K-flow window
as the columnar trajectory's ``BENCH_compressed.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream_localize.py --preset large
    PYTHONPATH=src python benchmarks/bench_stream_localize.py --preset tiny \
        --repeats 3 --label stream-smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import time
from collections import deque
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

PRESETS = {
    # preset -> (window_chunks, flows_per_chunk, probes_per_chunk)
    "tiny": (3, 400, 80),
    "ci": (4, 1_000, 150),
    # window totals match BENCH_compressed's large preset: 100K passive
    # flows + 5K probes retained at steady state.
    "large": (16, 6_250, 313),
}


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _stats(times):
    return {
        "mean_s": statistics.fmean(times),
        "stddev_s": statistics.stdev(times) if len(times) > 1 else 0.0,
        "repeats": len(times),
    }


def run(preset: str, repeats: int, seed: int):
    from repro.core.flock_fast import VectorJleState, greedy_local_search
    from repro.core.problem import InferenceProblem
    from repro.core.window import WindowedProblem
    from repro.eval.experiments import standard_topology
    from repro.eval.schemes import make_setup
    from repro.routing import EcmpRouting
    from repro.simulation import SilentLinkDrops, replay_stream
    from repro.telemetry.inputs import build_observation_batch

    window, flows_per_chunk, probes_per_chunk = PRESETS[preset]
    topo = standard_topology("tiny" if preset == "tiny" else "ci")
    routing = EcmpRouting(topo)
    setup = make_setup("flock")
    localizer = setup.localizer
    scenario = SilentLinkDrops(n_failures=3, min_rate=4e-3, max_rate=1e-2)

    # prefill + contribution-cache warm-up + measured cycles
    n_chunks = 2 * window + repeats
    print(f"simulating {n_chunks} chunks of {flows_per_chunk} flows + "
          f"{probes_per_chunk} probes ({topo.n_links} links)...")
    observations = [
        build_observation_batch(
            chunk.batch, setup.telemetry,
            np.random.default_rng(seed + 0x5EED + chunk.index),
        )
        for chunk in replay_stream(
            topo, routing, scenario, seed=seed, n_chunks=n_chunks,
            flows_per_chunk=flows_per_chunk,
            probes_per_chunk=probes_per_chunk,
        )
    ]

    # Pre-fill the window and localize once so the measured cycles are
    # the stream's steady state (full window, carried hypothesis).
    windowed = WindowedProblem(topo.n_components, topo.n_links, window=window)
    for obs in observations[:window]:
        update = windowed.append(obs)
    state = VectorJleState(update.problem, localizer.params)
    candidates = np.asarray(
        update.problem.observed_components, dtype=np.int64
    )
    greedy_local_search(state, candidates)
    # Chunk-aligned contribution cache, as StreamMonitor keeps it: the
    # pre-filled chunks were priced cold, so their slots start empty.
    # A window of unmeasured warm cycles replaces those empty slots
    # with live contributions - the steady state a long-running stream
    # sits in, where every expiring chunk finds its cached pricing.
    contribs = deque([None] * window)
    for obs in observations[window:2 * window]:
        update = windowed.append(obs)
        state = VectorJleState.rebase(
            update.problem, state,
            update.removed_flows, update.removed_weights,
            update.added_flows, update.added_weights,
            removed_contrib=contribs.popleft(),
        )
        contribs.append(state.added_contrib)
        greedy_local_search(
            state,
            np.asarray(update.problem.observed_components, dtype=np.int64),
        )

    warm_times, cold_times = [], []
    warm_pred = cold_pred = None
    for obs in observations[2 * window:]:
        t0 = time.perf_counter()
        update = windowed.append(obs)
        state = VectorJleState.rebase(
            update.problem, state,
            update.removed_flows, update.removed_weights,
            update.added_flows, update.added_weights,
            removed_contrib=contribs.popleft(),
        )
        contribs.append(state.added_contrib)
        warm_pred = greedy_local_search(
            state,
            np.asarray(update.problem.observed_components, dtype=np.int64),
        )
        warm_times.append(time.perf_counter() - t0)

        retained = windowed.retained_observations()
        t0 = time.perf_counter()
        rebuilt = InferenceProblem.from_batch(
            retained, topo.n_components, topo.n_links
        )
        cold_pred = localizer.localize(rebuilt)
        cold_times.append(time.perf_counter() - t0)

    if warm_pred.components != cold_pred.components:
        print(f"warning: final hypotheses differ (warm "
              f"{sorted(warm_pred.components)}, cold "
              f"{sorted(cold_pred.components)})")

    results = {
        "stream_cycle_incremental_warm": _stats(warm_times),
        "stream_cycle_rebuild_cold": _stats(cold_times),
    }
    speedup = (
        results["stream_cycle_rebuild_cold"]["mean_s"]
        / results["stream_cycle_incremental_warm"]["mean_s"]
    )
    derived = {
        "stream_cycle_speedup": speedup,
        "window_chunks": window,
        "window_flows": window * (flows_per_chunk + probes_per_chunk),
        "final_hypothesis_agrees": warm_pred.components
        == cold_pred.components,
    }
    for name, entry in results.items():
        print(f"{name:30s} mean {entry['mean_s']:8.4f}s "
              f"(stddev {entry['stddev_s']:.4f})")
    print(f"steady-state cycle speedup (cold/warm): {speedup:.2f}x")
    return results, derived


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", choices=sorted(PRESETS), default="large")
    parser.add_argument("--repeats", type=int, default=8,
                        help="measured steady-state cycles")
    parser.add_argument("--label", default="stream")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out-dir", default=str(REPO_ROOT))
    parser.add_argument("--no-write", action="store_true",
                        help="print results without writing the artifact")
    args = parser.parse_args()

    results, derived = run(args.preset, args.repeats, args.seed)
    if args.no_write:
        return 0
    payload = {
        "label": args.label,
        "git_sha": _git_sha(),
        "preset": args.preset,
        "repeats": args.repeats,
        "benchmarks": results,
        "derived": derived,
    }
    out = Path(args.out_dir) / f"BENCH_{args.label}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
