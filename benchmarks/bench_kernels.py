"""Micro-benchmarks of the inference kernels.

These are the work units whose asymptotics section 4.1 analyzes:
Δ-array construction (O(n + mT)), a JLE flip (O(DT)), a direct
hypothesis evaluation (Sherlock's unit), and a full greedy run.  They
also pin the vectorized engine's advantage over the reference engine,
and time every scheme in the registry end to end so a newly registered
scheme is benchmarked automatically.
"""

import pytest

from repro.core.flock_fast import VectorArrays, VectorJleState
from repro.core.jle import JleState
from repro.core.params import DEFAULT_PER_PACKET
from repro.eval.schemes import build_localizer, scheme_names


@pytest.fixture(scope="module")
def problem(drop_problem):
    return drop_problem


def test_vector_delta_construction(benchmark, problem):
    state = benchmark(VectorJleState, problem, DEFAULT_PER_PACKET)
    assert state.delta.shape == (problem.n_components,)


def test_reference_delta_construction(benchmark, problem):
    state = benchmark(JleState, problem, DEFAULT_PER_PACKET)
    assert len(state.delta) == problem.n_components


def test_vector_flip(benchmark, problem):
    state = VectorJleState(problem, DEFAULT_PER_PACKET)
    comp = problem.observed_components[0]

    def flip_pair():
        state.flip(comp)
        state.flip(comp)

    benchmark(flip_pair)
    assert not state.hypothesis


def test_hypothesis_ll_unit(benchmark, problem):
    arrays = VectorArrays(problem, DEFAULT_PER_PACKET)
    comps = problem.observed_components[:2]
    value = benchmark(arrays.hypothesis_ll, comps)
    assert isinstance(value, float)


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_full_greedy(benchmark, problem, engine):
    localizer = build_localizer("flock", engine=engine)
    pred = benchmark(localizer.localize, problem)
    assert pred.components


@pytest.mark.parametrize("scheme", scheme_names())
def test_registry_scheme_localize(benchmark, problem, scheme):
    """End-to-end localize cost of every registered scheme, on the
    same problem, labeled by its registry name."""
    localizer = build_localizer(scheme)
    pred = benchmark(localizer.localize, problem)
    assert pred is not None
