"""Fig. 4a - misconfigured WRED queue on the testbed topology.

Paper shape: Flock (INT) beats NetBouncer (INT); Flock (A2) has better
precision than 007 (A2); Flock (A2+P) gets very close to Flock (INT).
"""

from repro.eval.experiments import fig4a_queue_misconfig

from _common import by_scheme, run_once


def test_fig4a_queue_misconfig(benchmark, show):
    result = run_once(benchmark, fig4a_queue_misconfig, preset="ci", seed=17)
    show(result)

    rows = by_scheme(result)
    assert rows["Flock (INT)"]["fscore"] >= rows["NetBouncer (INT)"]["fscore"]
    assert rows["Flock (INT)"]["fscore"] > 0.9
    # A2+P closes most of the gap to INT (paper: "Flock (A2+P) gets
    # very close to Flock (INT)").
    assert rows["Flock (A2+P)"]["fscore"] >= rows["Flock (A2)"]["fscore"]
    assert rows["Flock (INT)"]["fscore"] - rows["Flock (A2+P)"]["fscore"] < 0.15
