"""Fig. 4b - link flap diagnosed with the per-flow RTT analysis.

Paper shape: the RTT symptom (no retransmissions!) is localizable;
Flock (INT) beats NetBouncer (INT); Flock stays accurate even though
its model ignores the reverse ack path (fscore 0.81 in the paper).
"""

from repro.eval.experiments import fig4b_link_flap

from _common import by_scheme, run_once


def test_fig4b_link_flap(benchmark, show):
    result = run_once(benchmark, fig4b_link_flap, preset="ci", seed=19)
    show(result)

    rows = by_scheme(result)
    assert rows["Flock (INT)"]["fscore"] >= rows["NetBouncer (INT)"]["fscore"] - 0.05
    assert rows["Flock (INT)"]["fscore"] > 0.75
    assert rows["Flock (INT)"]["recall"] > 0.75
    # The per-flow analysis gives every scheme usable signal.
    assert rows["Flock (A2+P)"]["fscore"] > 0.7
