#!/usr/bin/env python
"""Per-kernel backend comparison: numpy vs collapsed vs numba.

Where ``run_benchmarks.py`` tracks the repo's headline numbers, this
runner isolates the localization hot loops and times each registered
kernel backend on the same :class:`InferenceProblem`:

* ``delta_init`` - the full Δ-array build (``VectorJleState``
  construction, prior warm problem so interning is amortized).
* ``flip_pair`` - one flip + unflip of the highest-gain component.
* ``removal_gain`` - ``removal_gain`` over every observed component.
* ``localize_greedy`` - the end-to-end greedy+JLE localization.

Backends that are registered but not constructible here (numba without
the numba package) are reported as skipped rather than failing the run.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_backends.py \
        --preset ci --repeats 3

Writes ``BENCH_kernels_<label>.json`` with per-(benchmark, backend)
mean/stddev plus ``derived`` speedups of every non-reference backend
over numpy.  Timing semantics match ``run_benchmarks.py``: one cold
warmup call (recorded as ``cold_s`` — includes JIT compilation for the
numba backend), then ``repeats`` warm calls.

The module also carries pytest-benchmark arms (like the rest of
``benchmarks/``), parametrized over every registered backend, so
``pytest benchmarks/bench_kernel_backends.py`` compares the backends
on the shared ``drop_problem`` fixture; unavailable backends skip.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np
import pytest

from run_benchmarks import (
    PRESETS,
    TIMING_SEMANTICS,
    _git_sha,
    _stats,
    _timed,
    machine_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def build_problem(preset: str, seed: int):
    from repro.core.problem import InferenceProblem
    from repro.eval.experiments import standard_topology
    from repro.eval.scenarios import make_trace
    from repro.routing import EcmpRouting
    from repro.simulation import SilentLinkDrops
    from repro.telemetry.inputs import TelemetryConfig, build_observation_batch

    n_passive, n_probes = PRESETS[preset]
    topo = standard_topology(preset if preset in ("tiny", "paper") else "ci")
    routing = EcmpRouting(topo)
    scenario = SilentLinkDrops(n_failures=3, min_rate=4e-3, max_rate=1e-2)
    trace = make_trace(
        topo, routing, scenario, seed=seed,
        n_passive=n_passive, n_probes=n_probes,
    )
    batch = build_observation_batch(
        trace.batch, TelemetryConfig.from_spec("A1+A2+P"),
        np.random.default_rng(5),
    )
    return InferenceProblem.from_batch(batch, topo.n_components, topo.n_links)


def build_backend_benchmarks(problem, backend: str):
    """Return {name: callable(i)} for one kernel backend."""
    from repro.core.flock_fast import VectorJleState
    from repro.core.params import DEFAULT_PER_PACKET
    from repro.eval.schemes import build_localizer

    def delta_init(i):
        return VectorJleState(
            problem, DEFAULT_PER_PACKET, kernel_backend=backend
        )

    state = delta_init(0)
    flip_comp = int(np.argmax(state.delta))

    def flip_pair(i):
        state.flip(flip_comp)
        state.flip(flip_comp)

    # A second state holding a small hypothesis, so removal_gain is
    # timed on its own rather than through the flips that build it.
    gain_state = delta_init(0)
    for comp in np.argsort(gain_state.delta)[::-1][:4]:
        gain_state.flip(int(comp))
    members = sorted(gain_state.hypothesis)

    def removal_gain(i):
        return sum(gain_state.removal_gain(comp) for comp in members)

    localizer = build_localizer("flock", kernel_backend=backend)

    def localize_greedy(i):
        return localizer.localize(problem)

    return {
        "delta_init": delta_init,
        "flip_pair": flip_pair,
        "removal_gain": removal_gain,
        "localize_greedy": localize_greedy,
    }


# --- pytest-benchmark arms (collected by ``pytest benchmarks/``) -----

def _registered_backends():
    from repro.core.kernels import backend_names

    return backend_names()


def _require_backend(backend: str):
    from repro.core.kernels import backend_available

    if not backend_available(backend):
        pytest.skip(f"kernel backend {backend!r} not available here")


@pytest.mark.parametrize("backend", _registered_backends())
def test_delta_init_backend(benchmark, drop_problem, backend):
    from repro.core.flock_fast import VectorJleState
    from repro.core.params import DEFAULT_PER_PACKET

    _require_backend(backend)
    state = benchmark(
        VectorJleState, drop_problem, DEFAULT_PER_PACKET,
        kernel_backend=backend,
    )
    assert state.delta.shape == (drop_problem.n_components,)


@pytest.mark.parametrize("backend", _registered_backends())
def test_flip_pair_backend(benchmark, drop_problem, backend):
    from repro.core.flock_fast import VectorJleState
    from repro.core.params import DEFAULT_PER_PACKET

    _require_backend(backend)
    state = VectorJleState(
        drop_problem, DEFAULT_PER_PACKET, kernel_backend=backend
    )
    comp = drop_problem.observed_components[0]

    def flip_pair():
        state.flip(comp)
        state.flip(comp)

    benchmark(flip_pair)
    assert not state.hypothesis


@pytest.mark.parametrize("backend", _registered_backends())
def test_localize_greedy_backend(benchmark, drop_problem, backend):
    from repro.eval.schemes import build_localizer

    _require_backend(backend)
    localizer = build_localizer("flock", kernel_backend=backend)
    pred = benchmark(localizer.localize, drop_problem)
    assert pred.components


# --- standalone runner ----------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", choices=sorted(PRESETS), default="ci")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--label", default=None,
                        help="BENCH_kernels_<label>.json (default: preset)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out-dir", default=str(REPO_ROOT))
    args = parser.parse_args()

    from repro.core.kernels import backend_available, backend_names

    problem = build_problem(args.preset, args.seed)
    results = {}
    skipped = []
    for backend in backend_names():
        if not backend_available(backend):
            skipped.append(backend)
            print(f"[{backend}] skipped (not available here)")
            continue
        for name, fn in build_backend_benchmarks(problem, backend).items():
            times, cold = _timed(fn, args.repeats)
            entry = _stats(times, cold)
            results.setdefault(name, {})[backend] = entry
            print(f"[{backend}] {name:16s} mean {entry['mean_s']:8.4f}s "
                  f"(cold {entry['cold_s']:.4f})")

    derived = {}
    for name, per_backend in sorted(results.items()):
        ref = per_backend.get("numpy", {}).get("mean_s")
        if not ref:
            continue
        for backend, entry in sorted(per_backend.items()):
            if backend == "numpy" or not entry["mean_s"]:
                continue
            key = f"{name}_{backend}_speedup"
            derived[key] = ref / entry["mean_s"]
            print(f"{name} speedup (numpy/{backend}): {derived[key]:.2f}x")

    label = args.label or args.preset
    payload = {
        "label": label,
        "git_sha": _git_sha(),
        "machine": machine_fingerprint(),
        "preset": args.preset,
        "repeats": args.repeats,
        "timing": TIMING_SEMANTICS,
        "skipped_backends": skipped,
        "benchmarks": results,
        "derived": derived,
    }
    out = Path(args.out_dir) / f"BENCH_kernels_{label}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
