"""Fig. 2a/2b - silent packet drops: accuracy by scheme and input type.

Paper shape (400K flows): Flock (INT) ~0.99 fscore beats NetBouncer
(INT) ~0.88; Flock (A2) ~0.93 beats 007 (A2) ~0.61; adding passive
telemetry (A1+P, A1+A2+P) beats active-only (A1); accuracy improves
with monitoring volume.
"""

from repro.eval.experiments import fig2_tradeoff

from _common import by_scheme, run_once


def test_fig2_silent_drops(benchmark, show):
    result = run_once(benchmark, fig2_tradeoff, preset="ci", seed=7)
    show(result, columns=["volume", "scheme", "precision", "recall", "fscore"])

    high = by_scheme(result, volume="high")
    # PGM beats the non-PGM baselines on the same input.
    assert high["Flock (INT)"]["fscore"] > high["NetBouncer (INT)"]["fscore"]
    assert high["Flock (A2)"]["fscore"] > high["007 (A2)"]["fscore"]
    # Passive data helps: A1+P keeps pace with (and at paper scale
    # beats) active-only A1; small tolerance for CI-scale noise.
    assert high["Flock (A1+P)"]["fscore"] >= high["Flock (A1)"]["fscore"] - 0.1
    # Full telemetry is strong in absolute terms.
    assert high["Flock (A1+A2+P)"]["fscore"] > 0.8
    assert high["Flock (INT)"]["fscore"] > 0.8

    low = by_scheme(result, volume="low")
    # More monitoring volume should not hurt the full-telemetry arm.
    assert high["Flock (A1+A2+P)"]["fscore"] >= low["Flock (A1+A2+P)"]["fscore"] - 0.05
