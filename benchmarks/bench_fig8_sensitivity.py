"""Fig. 8a/8b - hyperparameter sensitivity and the effect of priors.

Paper shape: accuracy stays high over a wide (pg, pb) region (Fig. 8a);
raising the prior rho trades recall for precision, moving points right
along the tradeoff curve (Fig. 8b).
"""

from repro.eval.experiments import fig8a_sensitivity, fig8b_priors

from _common import run_once


def test_fig8a_pg_pb_sensitivity(benchmark, show):
    result = run_once(benchmark, fig8a_sensitivity, preset="ci", seed=43)
    show(result, columns=["pg", "pb", "precision", "recall", "fscore"])

    scores = [row["fscore"] for row in result.rows]
    # A wide region of settings stays accurate: at least half the grid
    # is within 0.15 of the best point.
    best = max(scores)
    near_best = sum(1 for s in scores if s >= best - 0.15)
    assert best > 0.8
    assert near_best >= len(scores) // 2


def test_fig8b_prior_tradeoff(benchmark, show):
    result = run_once(benchmark, fig8b_priors, preset="ci", seed=47)
    show(result)

    rows = sorted(result.rows, key=lambda r: r["rho"])
    # Smaller rho = stronger skepticism = precision at least as high as
    # the loosest prior; the loosest prior must not have the best
    # precision in the sweep.
    assert rows[0]["precision"] >= rows[-1]["precision"] - 1e-9
    precisions = [r["precision"] for r in rows]
    recalls = [r["recall"] for r in rows]
    # Recall should weakly increase as the prior loosens.
    assert recalls[-1] >= recalls[0] - 0.05
    # And the sweep must actually move something.
    assert max(precisions) - min(precisions) > 0.0 or \
        max(recalls) - min(recalls) > 0.0
