"""Sharded evaluation: shard-count scaling and merge overhead.

The shard layer exists so a trace batch can be split across OS
processes (or machines) with only serialized results crossing back.
This benchmark runs the Fig. 2 scheme grid over one batch three ways -
serial, sharded but executed sequentially in-process (pure overhead
measurement), and sharded across concurrent worker processes - then
times the merge fold in isolation.

Shape asserted:

* every path is bit-identical to serial in metrics;
* concurrent process shards beat serial wall-clock (the scaling win);
* the merge fold itself is a negligible fraction of serial runtime
  (it only deserializes and streams units through the accumulators).
"""

import os
import time

from repro.eval.experiments import (
    ExperimentResult,
    silent_drop_traces,
    standard_scheme_suite,
)
from repro.eval.runner import RunnerConfig, run_grid
from repro.eval.shard import (
    ShardRecorder,
    ShardSpec,
    merge_shards,
    run_sharded,
)

from _common import run_once


def _identical(serial, other):
    for label, expected in serial.items():
        assert other[label].accuracy == expected.accuracy, label


def test_shard_scaling_and_merge_overhead(benchmark, show):
    setups = standard_scheme_suite()
    traces = silent_drop_traces("ci", seed=7, n_traces=8)
    run_grid(setups, traces[:1], RunnerConfig())  # warm-up

    t0 = time.perf_counter()
    serial = run_grid(setups, traces, RunnerConfig())
    serial_seconds = time.perf_counter() - t0

    timings = {"serial": serial_seconds}
    for n_shards in (2, 4):
        t0 = time.perf_counter()
        sequential = run_sharded(setups, traces, n_shards)
        timings[f"{n_shards} shards, sequential"] = time.perf_counter() - t0
        _identical(serial, sequential)

        t0 = time.perf_counter()
        if n_shards == 4:
            # The headline configuration doubles as the pytest-benchmark
            # measurement.
            concurrent = run_once(
                benchmark, run_sharded, setups, traces, n_shards,
                shard_jobs=n_shards,
            )
        else:
            concurrent = run_sharded(
                setups, traces, n_shards, shard_jobs=n_shards
            )
        timings[f"{n_shards} shards, {n_shards} processes"] = (
            time.perf_counter() - t0
        )
        _identical(serial, concurrent)

    # Merge overhead in isolation: record all shards once, then time
    # only the replay fold that reassembles full summaries.
    payloads = []
    for index in range(4):
        recorder = ShardRecorder(ShardSpec(index, 4))
        run_grid(setups, traces, RunnerConfig(shard=recorder))
        payloads.append(recorder.payload())
    t0 = time.perf_counter()
    merged = merge_shards(setups, traces, payloads)
    merge_seconds = time.perf_counter() - t0
    _identical(serial, merged)
    timings["merge fold only"] = merge_seconds

    show(
        ExperimentResult(
            experiment="shard-eval",
            description="Fig. 2 grid: shard-count scaling and merge overhead",
            rows=[
                {
                    "path": name,
                    "seconds": seconds,
                    "vs_serial": seconds / serial_seconds,
                }
                for name, seconds in timings.items()
            ],
        )
    )

    # Concurrent process shards must win over serial (measured ~2-3x
    # for 4 shards on a 4-core box).  A single-core runner can't show
    # the win - there, only require bounded overhead (shards re-derive
    # traces, so allow pickling + re-simulation on top of the eval).
    if (os.cpu_count() or 1) >= 4:
        assert timings["4 shards, 4 processes"] < serial_seconds, (
            f"4 concurrent shard processes "
            f"({timings['4 shards, 4 processes']:.2f}s) should beat serial "
            f"({serial_seconds:.2f}s)"
        )
    else:
        assert timings["4 shards, 4 processes"] < serial_seconds * 3, (
            "sharding overhead on a single core should stay bounded"
        )
    # The merge fold does no inference; it must be a small fraction of
    # the evaluation it reassembles.
    assert merge_seconds < serial_seconds / 5, (
        f"merge fold ({merge_seconds:.3f}s) should be <20% of serial "
        f"({serial_seconds:.2f}s)"
    )
