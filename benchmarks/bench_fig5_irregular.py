"""Fig. 5a/5b - irregular Clos: accuracy vs fraction of omitted links.

Paper shape: Flock's accuracy is robust to topology irregularity;
007 is sensitive to it; Flock (P) - passive only - *improves* as
irregularity breaks the ECMP symmetry classes.
"""

from repro.eval.experiments import fig5_irregular

from _common import run_once


def _series(result, scheme):
    rows = [r for r in result.rows if r["scheme"] == scheme]
    return sorted(rows, key=lambda r: r["fraction_omitted"])


def test_fig5_irregular(benchmark, show):
    result = run_once(benchmark, fig5_irregular, preset="ci", seed=31)
    show(result, columns=["fraction_omitted", "scheme", "precision",
                          "recall", "fscore"])

    flock_int = _series(result, "Flock (INT)")
    flock_p = _series(result, "Flock (P)")
    v007 = _series(result, "007 (A2)")

    # Flock stays strong at every irregularity level.  CI scale runs
    # only 4 traces per fraction, so a single missed trace costs 0.25
    # recall; keep the bar above "coin flip" but below that step.
    assert min(r["fscore"] for r in flock_int) > 0.6

    # Flock (P) improves as symmetry breaks (paper's standout result).
    assert flock_p[-1]["fscore"] > flock_p[0]["fscore"]

    # Flock dominates 007 at high irregularity.
    assert flock_int[-1]["fscore"] > v007[-1]["fscore"]
