"""Fig. 4d - end-to-end scheme runtime across topology sizes.

Paper shape: 007 is the fastest; Flock is faster than NetBouncer on the
same input telemetry; every scheme's runtime grows with scale.
"""

from repro.eval.experiments import fig4d_scheme_runtime
from repro.eval.schemes import get_scheme, make_setup

from _common import run_once


def _times(result, scheme):
    return {
        row["k"]: row["seconds"]
        for row in result.rows
        if row["scheme"] == scheme
    }


def _label(scheme, spec=None):
    """Row label for a registry scheme, built from the registry itself."""
    return make_setup(scheme, spec=spec).labeled()


def test_fig4d_scheme_runtime(benchmark, show):
    result = run_once(benchmark, fig4d_scheme_runtime, preset="ci", seed=29)
    show(result, columns=["servers", "k", "scheme", "seconds"])

    # Every row label must resolve through the scheme registry: the
    # display name is "<display> (<spec>)" for some registered scheme.
    displays = {get_scheme(name).display for name in ("flock", "netbouncer", "007")}
    for row in result.rows:
        display = row["scheme"].rsplit(" (", 1)[0]
        assert display in displays, row["scheme"]

    flock_int = _times(result, _label("flock", "INT"))
    nb_int = _times(result, _label("netbouncer", "INT"))
    v007 = _times(result, _label("007"))
    largest = max(flock_int)

    # Flock beats NetBouncer on the same (INT) input telemetry.
    assert flock_int[largest] < nb_int[largest]
    # 007 is the fastest of the lot.
    assert v007[largest] <= flock_int[largest]
