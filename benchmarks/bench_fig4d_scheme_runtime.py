"""Fig. 4d - end-to-end scheme runtime across topology sizes.

Paper shape: 007 is the fastest; Flock is faster than NetBouncer on the
same input telemetry; every scheme's runtime grows with scale.
"""

from repro.eval.experiments import fig4d_scheme_runtime

from _common import run_once


def _times(result, scheme):
    return {
        row["k"]: row["seconds"]
        for row in result.rows
        if row["scheme"] == scheme
    }


def test_fig4d_scheme_runtime(benchmark, show):
    result = run_once(benchmark, fig4d_scheme_runtime, preset="ci", seed=29)
    show(result, columns=["servers", "k", "scheme", "seconds"])

    flock_int = _times(result, "Flock (INT)")
    nb_int = _times(result, "NetBouncer (INT)")
    v007 = _times(result, "007 (A2)")
    largest = max(flock_int)

    # Flock beats NetBouncer on the same (INT) input telemetry.
    assert flock_int[largest] < nb_int[largest]
    # 007 is the fastest of the lot.
    assert v007[largest] <= flock_int[largest]
