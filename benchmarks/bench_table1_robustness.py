"""Table 1 - parameter-calibration robustness.

Paper shape: Flock's accuracy barely moves when its hyperparameters are
calibrated on a different environment than the test set (under 2%
aggregate loss in the paper); the D (different) and S (same) rows stay
close.
"""

from repro.eval.experiments import table1_robustness

from _common import run_once


def test_table1_parameter_robustness(benchmark, show):
    result = run_once(benchmark, table1_robustness, preset="ci", seed=41)
    show(result, columns=["scheme", "environment", "mode", "precision",
                          "recall", "fscore"])

    envs = {row["environment"] for row in result.rows}
    assert len(envs) == 4
    gaps = []
    for env in envs:
        d_row = result.series(environment=env, mode="D")[0]
        s_row = result.series(environment=env, mode="S")[0]
        gaps.append(s_row["fscore"] - d_row["fscore"])
    mean_gap = sum(gaps) / len(gaps)
    # Same-environment calibration can't be much better than mismatched
    # calibration for Flock - that is the robustness claim.
    assert mean_gap < 0.15
    # And Flock remains accurate in absolute terms under mismatch.
    d_scores = [row["fscore"] for row in result.rows if row["mode"] == "D"]
    assert sum(d_scores) / len(d_scores) > 0.6
