"""Helper functions shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def by_scheme(result, **filters):
    """Index experiment rows by their scheme label."""
    return {row["scheme"]: row for row in result.series(**filters)}
