"""Fig. 3a/3b - soft gray failures: fscore vs drop rate (SNR sweep).

Paper shape: every scheme improves with the failed link's drop rate;
Flock with passive telemetry detects lower drop rates than active-only
schemes; 007's recall collapses under skewed traffic while Flock (A2)
holds up.
"""

from repro.eval.experiments import fig3_snr
from repro.eval.scenarios import SKEWED, UNIFORM

from _common import run_once


def _series(result, scheme, traffic):
    rows = [
        r for r in result.rows
        if r["scheme"] == scheme and r["traffic"] == traffic
    ]
    return sorted(rows, key=lambda r: r["drop_rate"])


def test_fig3_snr_sweep(benchmark, show):
    result = run_once(benchmark, fig3_snr, preset="ci", seed=13)
    show(result, columns=["traffic", "drop_rate", "scheme", "fscore"])

    # Monotone-ish trend: the highest drop rate must beat the lowest.
    for scheme in ("Flock (INT)", "Flock (A2)"):
        series = _series(result, scheme, UNIFORM)
        assert series[-1]["fscore"] >= series[0]["fscore"]
        # At >= 1% drops, Flock localizes reliably (paper: "Flock can
        # detect links with > 1% drop rate ... with high recall").
        assert series[-1]["fscore"] > 0.75

    # By 0.6% drops the full-telemetry arm localizes near-perfectly
    # (paper: passive telemetry makes >0.4% reliably detectable).
    flock_full = _series(result, "Flock (A1+A2+P)", UNIFORM)
    assert all(r["fscore"] > 0.9 for r in flock_full if r["drop_rate"] >= 0.006)

    # Skewed traffic hurts 007 more than Flock (paper Fig. 3b).
    skew_007 = _series(result, "007 (A2)", SKEWED)
    skew_flock = _series(result, "Flock (A2)", SKEWED)
    mean_007 = sum(r["fscore"] for r in skew_007) / len(skew_007)
    mean_flock = sum(r["fscore"] for r in skew_flock) / len(skew_flock)
    assert mean_flock > mean_007
