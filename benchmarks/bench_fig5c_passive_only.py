"""Fig. 5c - Flock (P) on the hard nearly-symmetric passive-only case.

Paper shape: with <5% omitted links and no probes/paths, Flock (P)
still reaches useful recall, and its precision tracks the theoretical
maximum imposed by the ECMP link-equivalence classes.
"""

from repro.eval.experiments import fig5c_passive_hard

from _common import run_once


def test_fig5c_passive_only_hard(benchmark, show):
    result = run_once(benchmark, fig5c_passive_hard, preset="ci", seed=37)
    show(result)

    rows = sorted(result.rows, key=lambda r: r["fraction_omitted"])
    # Useful partial analysis where other schemes don't apply at all.
    assert max(r["recall"] for r in rows) >= 0.5
    # Precision can never beat the equivalence-class bound (modulo the
    # lucky case where the scheme returns a strict subset of a class).
    for row in rows:
        assert row["precision"] <= row["theoretical_max_precision"] + 0.25
    # The bound itself is informative (below 1 in a near-symmetric Clos).
    assert any(r["theoretical_max_precision"] < 1.0 for r in rows)
