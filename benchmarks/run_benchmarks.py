#!/usr/bin/env python
"""Benchmark trajectory runner: kernels + trace pipeline -> BENCH_*.json.

Runs the repo's headline performance numbers outside pytest and writes
a machine-readable snapshot (per-benchmark mean/stddev over repeats,
git sha, preset) to ``BENCH_<label>.json`` at the repo root, so perf
PRs carry before/after evidence that CI can re-measure.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --preset tiny
    PYTHONPATH=src python benchmarks/run_benchmarks.py --preset large \
        --label columnar --repeats 3
    PYTHONPATH=src python benchmarks/run_benchmarks.py --preset tiny \
        --check BENCH_ci-smoke.json

``--check`` re-measures and fails (exit 1) when any benchmark shared
with the artifact regresses by more than ``--threshold`` (default 25%);
benchmarks faster than ``--min-seconds`` are skipped as timer noise.

Benchmarks
----------
* ``trace_build_columnar`` - simulate -> telemetry -> InferenceProblem
  through the struct-of-arrays pipeline (FlowBatch / ObservationBatch /
  from_batch), one fresh trace per repeat over a shared PathSpace (the
  runner's steady state).
* ``trace_build_object`` - the same workload through the object API
  (FlowSpec list -> FlowRecord list -> build_observations ->
  from_observations).  Note this is the *current* object API, whose
  simulate() internally rides the batch kernel over a persistent
  shared PathSpace - i.e. the reported speedup is conservative
  relative to the pre-columnar per-record implementation.
* ``simulate_columnar`` - trace generation alone (specs + simulator).
* ``simulate_columnar_vec`` - the same trace generation with the
  vectorized RNG mode (``rng_mode="vectorized"``).
* ``kernel_delta_vector`` / ``kernel_delta_reference`` - JLE delta-array
  construction, vectorized vs reference engine.
* ``kernel_delta_collapsed`` / ``kernel_delta_numba`` - the same Δ
  build through the collapsed-row kernel backends (numba arm only when
  numba is importable).
* ``kernel_flip_vector`` - one JLE flip pair on the vector state.
* ``localize_greedy_fast`` - full Flock greedy+JLE localization.
* ``localize_greedy_collapsed`` / ``localize_greedy_numba`` - the same
  localization through the collapsed / compiled kernel backends.
* ``localize_gibbs`` - Gibbs sampling localization.

``derived`` carries the headline ratios: ``trace_build_speedup``
(object mean / columnar mean), ``kernel_delta_collapse_speedup`` and
``localize_greedy_collapse_speedup`` (numpy mean / collapsed mean),
``simulate_rng_speedup`` (grouped mean / vectorized mean), plus numba
variants when measured.

Timing semantics (also recorded in the artifact under ``timing``):
each benchmark runs one untimed-for-the-mean *cold* call first (its
wall time is reported as ``cold_s``), then ``repeats`` *warm* calls
whose mean/stddev are reported.  ``cold_s`` may exceed ``mean_s`` —
that is the warmup cost (interning, JIT compilation), not noise — and
``stddev_s`` is null when ``repeats == 1`` (a single sample has no
spread).
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import time
from pathlib import Path
from typing import Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

PRESETS = {
    # preset -> (n_passive, n_probes)
    "tiny": (1_200, 200),
    "ci": (4_000, 600),
    "large": (100_000, 5_000),
    # The paper's simulation scale: full paper_simulation_clos fabric,
    # 400K passive flows.  Only the compressed pipeline can run it;
    # the object-pipeline and reference-engine arms are skipped.
    "paper": (400_000, 20_000),
}

#: Benchmarks excluded per preset (intractable by design at that scale).
PRESET_SKIPS = {
    "paper": {
        "trace_build_object",      # materializes ~9M per-pair projections
        "kernel_delta_reference",  # pure-Python engine over 400K flows
        "kernel_flip_vector",      # micro-bench; covered by localize_*
    },
}


def machine_fingerprint() -> dict:
    """Identify the benchmarking machine without leaking its hostname.

    Wall-clock benchmark numbers only compare meaningfully on the same
    hardware; the fingerprint (hashed hostname, CPU model, core count)
    lets ``--check`` warn when an artifact from one machine is being
    used to gate another.
    """
    import hashlib
    import os
    import platform
    import socket

    cpu_model = platform.processor() or platform.machine()
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "host": hashlib.sha256(
            socket.gethostname().encode()
        ).hexdigest()[:12],
        "cpu_model": cpu_model,
        "cores": os.cpu_count(),
    }


def check_machine(baseline: dict) -> None:
    """Warn when ``--check`` compares across different machines."""
    recorded = baseline.get("machine")
    if not recorded:
        print("note: baseline artifact has no machine fingerprint "
              "(written by an older runner); timings may not be comparable")
        return
    current = machine_fingerprint()
    diffs = [
        f"{key}: baseline {recorded.get(key)!r} vs here {current[key]!r}"
        for key in ("host", "cpu_model", "cores")
        if recorded.get(key) != current[key]
    ]
    if diffs:
        print("WARNING: baseline artifact was measured on different "
              "hardware; absolute timings are not comparable and the "
              "regression gate may mislead:")
        for diff in diffs:
            print(f"  {diff}")


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _timed(fn, repeats: int, warmup: int = 1):
    """Run ``fn(i)`` for warmup + repeats; return (times, cold_times)."""
    cold = []
    for i in range(warmup):
        t0 = time.perf_counter()
        fn(i)
        cold.append(time.perf_counter() - t0)
    times = []
    for i in range(repeats):
        t0 = time.perf_counter()
        fn(warmup + i)
        times.append(time.perf_counter() - t0)
    return times, cold


#: Explicit warm/cold semantics, embedded in every artifact so a reader
#: of BENCH_*.json does not need the runner source to interpret it.
TIMING_SEMANTICS = {
    "mean_s": "mean over the warm repeats (after one untimed warmup call)",
    "stddev_s": "sample stddev over warm repeats; null when repeats == 1",
    "cold_s": "wall time of the first (cold) call: interning and JIT "
              "warmup included, so cold_s may exceed mean_s",
}


def _stats(times, cold=None):
    entry = {
        "mean_s": statistics.fmean(times),
        "stddev_s": statistics.stdev(times) if len(times) > 1 else None,
        "repeats": len(times),
    }
    if cold:
        entry["cold_s"] = statistics.fmean(cold)
    return entry


def build_benchmarks(preset: str, base_seed: int):
    """Return {name: callable(i)} benchmark closures for the preset."""
    from repro.core.flock_fast import VectorJleState
    from repro.core.gibbs import GibbsInference
    from repro.core.jle import JleState
    from repro.core.kernels import backend_available
    from repro.core.params import DEFAULT_PER_PACKET
    from repro.core.problem import InferenceProblem
    from repro.eval.experiments import standard_topology
    from repro.eval.scenarios import make_matrix, make_trace
    from repro.eval.schemes import build_localizer
    from repro.routing import EcmpRouting
    from repro.simulation import FlowLevelSimulator, SilentLinkDrops
    from repro.telemetry.inputs import (
        TelemetryConfig,
        build_observation_batch,
        build_observations,
    )
    from repro.traffic import generate_passive_flows
    from repro.traffic.probes import a1_probe_plan

    n_passive, n_probes = PRESETS[preset]
    if preset in ("tiny", "paper"):
        topo = standard_topology(preset)
    else:
        topo = standard_topology("ci")
    routing = EcmpRouting(topo)
    telemetry = TelemetryConfig.from_spec("A1+A2+P")
    scenario = SilentLinkDrops(n_failures=3, min_rate=4e-3, max_rate=1e-2)

    def trace_build_columnar(i):
        trace = make_trace(
            topo, routing, scenario, seed=base_seed + i,
            n_passive=n_passive, n_probes=n_probes,
        )
        batch = build_observation_batch(
            trace.batch, telemetry, np.random.default_rng(5)
        )
        return InferenceProblem.from_batch(
            batch, topo.n_components, topo.n_links
        )

    # The object arm shares one space across repeats too, so neither
    # arm is charged fresh-interning costs the other amortizes.
    from repro.routing.paths import PathSpace

    object_space = PathSpace(topo, routing)

    def trace_build_object(i):
        # The object API route: per-flow specs, per-flow records,
        # per-flow observations.
        rng = np.random.default_rng(base_seed + i)
        injection = scenario.inject(topo, rng)
        matrix = make_matrix(topo, "uniform", rng)
        specs = list(
            generate_passive_flows(routing, matrix, n_passive, rng)
        )
        specs.extend(a1_probe_plan(topo, routing, n_probes, rng))
        records = FlowLevelSimulator(topo).simulate(
            specs, injection, rng, space=object_space
        )
        observations = build_observations(
            records, topo, routing, telemetry, np.random.default_rng(5)
        )
        return InferenceProblem.from_observations(
            observations, topo.n_components, topo.n_links
        )

    def simulate_columnar(i):
        return make_trace(
            topo, routing, scenario, seed=base_seed + 1000 + i,
            n_passive=n_passive, n_probes=n_probes,
        )

    def simulate_columnar_vec(i):
        return make_trace(
            topo, routing, scenario, seed=base_seed + 1000 + i,
            n_passive=n_passive, n_probes=n_probes,
            rng_mode="vectorized",
        )

    # A fixed mid-size problem for the kernel micro-benchmarks.
    kernel_problem = trace_build_columnar(10_000)

    def kernel_delta_vector(i):
        return VectorJleState(kernel_problem, DEFAULT_PER_PACKET)

    def kernel_delta_collapsed(i):
        return VectorJleState(
            kernel_problem, DEFAULT_PER_PACKET, kernel_backend="collapsed"
        )

    def kernel_delta_reference(i):
        return JleState(kernel_problem, DEFAULT_PER_PACKET)

    skips = PRESET_SKIPS.get(preset, set())
    benches = {
        "trace_build_columnar": trace_build_columnar,
        "trace_build_object": trace_build_object,
        "simulate_columnar": simulate_columnar,
        "simulate_columnar_vec": simulate_columnar_vec,
        "kernel_delta_vector": kernel_delta_vector,
        "kernel_delta_collapsed": kernel_delta_collapsed,
        "kernel_delta_reference": kernel_delta_reference,
    }

    if backend_available("numba"):
        def kernel_delta_numba(i):
            return VectorJleState(
                kernel_problem, DEFAULT_PER_PACKET, kernel_backend="numba"
            )

        benches["kernel_delta_numba"] = kernel_delta_numba

    if "kernel_flip_vector" not in skips:
        vector_state = VectorJleState(kernel_problem, DEFAULT_PER_PACKET)
        flip_comp = kernel_problem.observed_components[0]

        def kernel_flip_vector(i):
            vector_state.flip(flip_comp)
            vector_state.flip(flip_comp)

        benches["kernel_flip_vector"] = kernel_flip_vector

    greedy = build_localizer("flock")
    greedy_collapsed = build_localizer("flock", kernel_backend="collapsed")
    gibbs = GibbsInference(DEFAULT_PER_PACKET, sweeps=12, burn_in=4, seed=0)

    def localize_greedy_fast(i):
        return greedy.localize(kernel_problem)

    def localize_greedy_collapsed(i):
        return greedy_collapsed.localize(kernel_problem)

    def localize_gibbs(i):
        return gibbs.localize(kernel_problem)

    benches["localize_greedy_fast"] = localize_greedy_fast
    benches["localize_greedy_collapsed"] = localize_greedy_collapsed
    benches["localize_gibbs"] = localize_gibbs

    if backend_available("numba"):
        greedy_numba = build_localizer("flock", kernel_backend="numba")

        def localize_greedy_numba(i):
            return greedy_numba.localize(kernel_problem)

        benches["localize_greedy_numba"] = localize_greedy_numba

    return {name: fn for name, fn in benches.items() if name not in skips}


def check_regressions(
    baseline: dict,
    results: dict,
    threshold: float,
    min_seconds: float,
) -> Tuple[int, int]:
    """Compare fresh results against a committed artifact.

    Returns ``(regressions, compared)``: regressions are benchmarks
    present in both runs whose fresh mean exceeds the baseline mean by
    more than ``threshold``; benchmarks below ``min_seconds`` in the
    baseline are timer noise and are skipped.  Callers must treat
    ``compared == 0`` as a gate failure - comparing nothing validates
    nothing.
    """
    regressions = 0
    compared = 0
    for name, entry in sorted(baseline.get("benchmarks", {}).items()):
        fresh = results.get(name)
        old_mean = entry.get("mean_s")
        if fresh is None or old_mean is None:
            print(f"{name:26s} SKIP (not measured in this run)")
            continue
        if old_mean < min_seconds:
            print(f"{name:26s} SKIP (baseline {old_mean:.4f}s below noise floor)")
            continue
        compared += 1
        new_mean = fresh["mean_s"]
        ratio = new_mean / old_mean
        status = "OK"
        if new_mean > old_mean * (1.0 + threshold):
            status = "REGRESSION"
            regressions += 1
        print(f"{name:26s} {old_mean:8.4f}s -> {new_mean:8.4f}s "
              f"({ratio:5.2f}x)  {status}")
    return regressions, compared


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", choices=sorted(PRESETS), default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--label", default=None,
                        help="BENCH_<label>.json (default: the preset)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out-dir", default=str(REPO_ROOT))
    parser.add_argument(
        "--check", default=None, metavar="BENCH.json",
        help="re-measure and fail on >threshold regressions vs this "
             "artifact (no new artifact is written)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed mean-time regression fraction for --check",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.005,
        help="baseline means below this are skipped by --check "
             "(timer noise)",
    )
    args = parser.parse_args()

    baseline = None
    if args.check is not None:
        baseline = json.loads(Path(args.check).read_text())
        if args.preset is None:
            args.preset = baseline.get("preset", "ci")
        if args.repeats is None:
            args.repeats = baseline.get("repeats", 3)
    if args.preset is None:
        args.preset = "ci"
    if args.repeats is None:
        args.repeats = 3

    benches = build_benchmarks(args.preset, args.seed)
    results = {}
    for name, fn in benches.items():
        times, cold = _timed(fn, args.repeats)
        results[name] = _stats(times, cold)
        stddev = results[name]["stddev_s"]
        stddev_txt = "n/a" if stddev is None else f"{stddev:.4f}"
        print(f"{name:26s} mean {results[name]['mean_s']:8.4f}s "
              f"(stddev {stddev_txt}, "
              f"cold {results[name]['cold_s']:.4f})")

    if baseline is not None:
        print(f"\nchecking against {args.check} "
              f"(threshold {args.threshold:.0%})")
        check_machine(baseline)
        regressions, compared = check_regressions(
            baseline, results, args.threshold, args.min_seconds
        )
        if regressions:
            print(f"{regressions} of {compared} benchmark(s) regressed")
            return 1
        if compared == 0:
            print("no benchmarks compared - the gate validated nothing "
                  "(preset mismatch, or every baseline below the noise "
                  "floor); failing")
            return 1
        print(f"no regressions across {compared} benchmark(s)")
        return 0

    derived = {}

    def _speedup(key, slow_name, fast_name, caption):
        slow = results.get(slow_name, {}).get("mean_s")
        fast = results.get(fast_name, {}).get("mean_s")
        if slow and fast:
            derived[key] = slow / fast
            print(f"{caption}: {slow / fast:.2f}x")

    _speedup("trace_build_speedup", "trace_build_object",
             "trace_build_columnar", "trace build speedup (object/columnar)")
    _speedup("kernel_delta_collapse_speedup", "kernel_delta_vector",
             "kernel_delta_collapsed", "delta build speedup (numpy/collapsed)")
    _speedup("kernel_delta_numba_speedup", "kernel_delta_vector",
             "kernel_delta_numba", "delta build speedup (numpy/numba)")
    _speedup("localize_greedy_collapse_speedup", "localize_greedy_fast",
             "localize_greedy_collapsed",
             "greedy localize speedup (numpy/collapsed)")
    _speedup("localize_greedy_numba_speedup", "localize_greedy_fast",
             "localize_greedy_numba", "greedy localize speedup (numpy/numba)")
    _speedup("simulate_rng_speedup", "simulate_columnar",
             "simulate_columnar_vec",
             "simulate speedup (grouped/vectorized rng)")

    label = args.label or args.preset
    payload = {
        "label": label,
        "git_sha": _git_sha(),
        "machine": machine_fingerprint(),
        "preset": args.preset,
        "repeats": args.repeats,
        "timing": TIMING_SEMANTICS,
        "benchmarks": results,
        "derived": derived,
    }
    out = Path(args.out_dir) / f"BENCH_{label}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
