#!/usr/bin/env python
"""Build a brand-new experiment declaratively - no driver function.

The paper's evaluation matrix is scenario x topology x telemetry x
scheme x seeds.  With the registries, a new experiment is just data: a
list of grid points naming a registered topology, a registered failure
scenario (with parameters), trace knobs, and registered schemes.  The
generic driver handles trace generation, shared problem building,
parallelism, and row aggregation - and the spec is automatically
shardable across machines because its grid-call sequence is pure data.

This example asks a question none of the paper's figures answer
directly: how does each scheme degrade as *both* a link and a whole
device fail in the same monitoring interval, on a small irregular
fabric?

Run:  python examples/custom_experiment.py
"""

from repro.eval.reporting import print_result
from repro.eval.spec import (
    ExperimentSpec,
    GridPoint,
    ScenarioSpec,
    SchemeRef,
    TopologySpec,
    TraceSpec,
    run_spec,
)


def main():
    points = []
    for scenario_name, params in (
        ("silent-link-drops", {"n_failures": 2}),
        ("silent-device-failure", {"n_devices": 1}),
    ):
        points.append(
            GridPoint(
                topology=TopologySpec(
                    "standard-omit",
                    {"preset": "ci", "fraction": 0.10, "topo_seed": 1999},
                ),
                key={"scenario": scenario_name},
                scenario=ScenarioSpec(scenario_name, params=params),
                trace=TraceSpec(
                    seeds=(101, 102, 103, 104), n_passive=4000, n_probes=600
                ),
                schemes=(
                    SchemeRef("flock"),                  # default A1+A2+P
                    SchemeRef("flock", spec="P"),        # passive only
                    SchemeRef("netbouncer"),             # default INT
                    SchemeRef("007"),                    # default A2
                ),
            )
        )
    spec = ExperimentSpec(
        name="mixed-failures-irregular",
        description="Link vs device failures on a 10%-omitted Clos",
        points=points,
    )
    print_result(run_spec(spec))


if __name__ == "__main__":
    main()
