#!/usr/bin/env python
"""Quickstart: localize silent packet drops in a simulated datacenter.

Builds a k=4 fat-tree, silently fails two fabric links, monitors ~4000
application flows plus active probes, and runs Flock's greedy+JLE MLE
inference on the combined A1+A2+P telemetry.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DEFAULT_PER_PACKET,
    EcmpRouting,
    FlockInference,
    InferenceProblem,
    SilentLinkDrops,
    TelemetryConfig,
    build_observations,
    evaluate_prediction,
    fat_tree,
    make_trace,
)


def main():
    # 1. A datacenter fabric and its ECMP routing.
    topo = fat_tree(4)
    routing = EcmpRouting(topo)
    print(f"fabric: {topo}")

    # 2. Inject a gray failure: two links silently dropping 0.4%-1% of
    #    packets, invisible to switch counters.
    scenario = SilentLinkDrops(n_failures=2, min_rate=4e-3, max_rate=1e-2)
    trace = make_trace(
        topo, routing, scenario, seed=7, n_passive=4000, n_probes=600
    )
    truth = trace.ground_truth
    print("ground truth:",
          sorted(topo.component_name(c) for c in truth.failed_links))

    # 3. Telemetry: active probes (A1), traced flagged flows (A2), and
    #    passive flow reports with ECMP path uncertainty (P).
    telemetry = TelemetryConfig.from_spec("A1+A2+P")
    observations = build_observations(
        trace.records, topo, routing, telemetry, np.random.default_rng(1)
    )
    problem = InferenceProblem.from_observations(
        observations, topo.n_components, topo.n_links
    )
    print(problem.describe())

    # 4. Inference.
    prediction = FlockInference(DEFAULT_PER_PACKET).localize(problem)
    print("predicted:",
          sorted(topo.component_name(c) for c in prediction.components))
    print(f"hypotheses scanned: {prediction.hypotheses_scanned}")

    # 5. Score it.
    metrics = evaluate_prediction(prediction, truth, topo)
    print(f"precision={metrics.precision:.2f} recall={metrics.recall:.2f}")


if __name__ == "__main__":
    main()
