#!/usr/bin/env python
"""End-to-end telemetry pipeline over real UDP loopback sockets.

Reproduces the paper's section-5 system path: simulate a monitoring
interval, run an end-host agent that encodes 52-byte IPFIX-like flow
reports and exports them as UDP datagrams, receive them in a threaded
collector, rebuild the inference input from the *wire* reports, and
localize - exactly what Flock's production deployment would do, minus
PF_RING.

Run:  python examples/agent_collector_demo.py
"""

import time

import numpy as np

from repro import (
    DEFAULT_PER_PACKET,
    Collector,
    EcmpRouting,
    FlockInference,
    InferenceProblem,
    SilentLinkDrops,
    TelemetryAgent,
    TelemetryConfig,
    evaluate_prediction,
    fat_tree,
    make_trace,
)
from repro.telemetry import UdpCollectorServer, UdpTransport
from repro.telemetry.inputs import build_observations_from_reports


def main():
    topo = fat_tree(4)
    routing = EcmpRouting(topo)
    trace = make_trace(
        topo, routing,
        SilentLinkDrops(n_failures=2, min_rate=5e-3, max_rate=1e-2),
        seed=3, n_passive=5000, n_probes=500,
    )
    print(f"simulated {len(trace.records)} flow records; ground truth:",
          sorted(topo.component_name(c)
                 for c in trace.ground_truth.failed_links))

    collector = Collector()
    with UdpCollectorServer(collector) as server:
        host, port = server.address
        print(f"collector listening on udp://{host}:{port}")
        transport = UdpTransport(host, port)
        agent = TelemetryAgent(transport, reveal_paths=True)
        t0 = time.perf_counter()
        agent.observe(trace.records)
        agent.flush()
        transport.close()
        while collector.pending_reports < agent.exported_reports:
            if time.perf_counter() - t0 > 10.0:
                break
            time.sleep(0.005)
        elapsed = time.perf_counter() - t0
        print(f"agent exported {agent.exported_reports} reports in "
              f"{agent.exported_messages} messages; collector ingested "
              f"{collector.pending_reports} in {elapsed*1e3:.0f} ms "
              f"({collector.pending_reports/elapsed:,.0f} reports/s)")

    reports = collector.drain()
    observations = build_observations_from_reports(
        reports, topo, routing,
        TelemetryConfig.from_spec("INT"), np.random.default_rng(0),
    )
    problem = InferenceProblem.from_observations(
        observations, topo.n_components, topo.n_links
    )
    prediction = FlockInference(DEFAULT_PER_PACKET).localize(problem)
    print("localized:",
          sorted(topo.component_name(c) for c in prediction.components))
    metrics = evaluate_prediction(prediction, trace.ground_truth, topo)
    print(f"precision={metrics.precision:.2f} recall={metrics.recall:.2f}")


if __name__ == "__main__":
    main()
