#!/usr/bin/env python
"""The paper's Fig. 6 worked example, end to end.

Five links, five flows, one silently-failing link (I2<->D2).  007's
votes concentrate on the shared middle link; Flock's MLE explains the
evidence with exactly the right link.

Run:  python examples/worked_example.py
"""

from repro.eval.experiments import fig6_worked_example
from repro.eval.reporting import print_result


def main():
    print("network:  S1,S2 -- I1 -- I2 -- D1,D2 ; I2<->D2 drops ~5%")
    print("flows:    S1->D2 543/10K bad, S2->D2 461/10K bad,")
    print("          S1->D1 2/10K, S2->D1 0/10K, S1->S2 0/10K")
    print_result(fig6_worked_example())


if __name__ == "__main__":
    main()
