#!/usr/bin/env python
"""Walk through a silent device-failure incident (paper section 7.2).

A line-card-style fault elevates the drop rate on most of one switch's
links.  Flock models devices as first-class components with a stricter
(5x on log-scale) prior, so it reports the *device* when the evidence
spans its links - instead of a pile of per-link alerts.

Run:  python examples/device_failure_incident.py
"""

import numpy as np

from repro import (
    DEFAULT_PER_PACKET,
    EcmpRouting,
    FlockInference,
    InferenceProblem,
    SilentDeviceFailure,
    TelemetryConfig,
    build_observations,
    evaluate_prediction,
    three_tier_clos,
)
from repro.eval.scenarios import make_trace


def main():
    topo = three_tier_clos(
        pods=4, tors_per_pod=4, aggs_per_pod=2,
        core_groups=2, cores_per_group=2, hosts_per_tor=3,
    )
    routing = EcmpRouting(topo)

    scenario = SilentDeviceFailure(
        n_devices=1, min_link_fraction=0.75, max_link_fraction=1.0,
        min_rate=4e-3, max_rate=1e-2,
    )
    trace = make_trace(
        topo, routing, scenario, seed=13, n_passive=8000, n_probes=1200
    )
    truth = trace.ground_truth
    device = next(iter(truth.failed_devices))
    node = topo.component_device(device)
    print(f"incident: device {topo.name(node)} silently dropping packets on "
          f"{len(truth.drop_rates)}/{len(topo.device_links(node))} links")

    observations = build_observations(
        trace.records, topo, routing,
        TelemetryConfig.from_spec("INT"), np.random.default_rng(3),
    )
    problem = InferenceProblem.from_observations(
        observations, topo.n_components, topo.n_links
    )
    prediction = FlockInference(DEFAULT_PER_PACKET).localize(problem)

    print("\nFlock's report:")
    for comp in sorted(prediction.components):
        kind = "DEVICE" if topo.is_device_component(comp) else "link"
        print(f"  [{kind}] {topo.component_name(comp)} "
              f"(log-gain {prediction.scores[comp]:.1f})")

    metrics = evaluate_prediction(prediction, truth, topo)
    print(f"\nprecision={metrics.precision:.2f} recall={metrics.recall:.2f}")
    if device in prediction.components:
        print("the faulty device itself was identified - one alert, "
              "not a flood of per-link pages")


if __name__ == "__main__":
    main()
