#!/usr/bin/env python
"""Compare all schemes and input types on silent packet drops.

Reproduces the shape of the paper's Fig. 2 at laptop scale: a 3-tier
Clos with up to 8 concurrently failed links, half the traces with
uniform traffic and half with a rack-level hotspot; each scheme runs on
the telemetry it supports (Flock on everything; NetBouncer on A1/INT;
007 on A2).

Run:  python examples/silent_drops_datacenter.py [--jobs N]

The whole grid goes through one ``evaluate_many`` call: schemes that
share a telemetry spec (e.g. Flock and NetBouncer on INT) build their
inference problems once per trace, and ``--jobs`` distributes traces
over a process pool.
"""

import argparse

import numpy as np

from repro import EcmpRouting, SilentLinkDrops, three_tier_clos
from repro.eval.experiments import standard_scheme_suite
from repro.eval.harness import evaluate_many
from repro.eval.metrics import error_reduction
from repro.eval.runner import RunnerConfig
from repro.eval.scenarios import make_trace_batch


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel workers (process pool when > 1)")
    args = parser.parse_args()
    topo = three_tier_clos(
        pods=4, tors_per_pod=4, aggs_per_pod=2,
        core_groups=2, cores_per_group=2, hosts_per_tor=3,
    )
    routing = EcmpRouting(topo)
    print(f"fabric: {topo}")

    rng = np.random.default_rng(0)
    scenarios = [
        SilentLinkDrops(n_failures=int(rng.integers(1, 9)))
        for _ in range(8)
    ]
    traces = make_trace_batch(
        topo, routing, scenarios, base_seed=7,
        n_passive=5000, n_probes=1200,
    )
    n_failures = [len(t.ground_truth.failed_links) for t in traces]
    print(f"traces: {len(traces)}, concurrent failures per trace: {n_failures}")

    runner = RunnerConfig.resolve(jobs=args.jobs)
    suite = standard_scheme_suite()
    results = evaluate_many(suite, traces, runner)
    print(f"\n{'scheme':26s} {'precision':>9s} {'recall':>7s} {'fscore':>7s} "
          f"{'build':>8s} {'infer':>8s}")
    for setup in suite:
        summary = results[setup.labeled()]
        acc = summary.accuracy
        print(f"{setup.labeled():26s} {acc.precision:9.3f} {acc.recall:7.3f} "
              f"{acc.fscore:7.3f} {summary.mean_build_seconds*1e3:6.0f}ms "
              f"{summary.mean_inference_seconds*1e3:6.0f}ms")

    flock_int = results["Flock (INT)"].accuracy.fscore
    nb_int = results["NetBouncer (INT)"].accuracy.fscore
    flock_a2 = results["Flock (A2)"].accuracy.fscore
    v007_a2 = results["007 (A2)"].accuracy.fscore
    print(f"\nerror reduction, Flock vs NetBouncer (INT): "
          f"{error_reduction(nb_int, flock_int):.1f}x")
    print(f"error reduction, Flock vs 007 (A2):        "
          f"{error_reduction(v007_a2, flock_a2):.1f}x")


if __name__ == "__main__":
    main()
