#!/usr/bin/env python
"""Passive-only localization and ECMP symmetry (paper section 7.6 / Fig. 5c).

Some networks only have NetFlow/IPFIX-style passive data: no probes, no
traced paths.  Past schemes cannot ingest it at all; Flock (P) can,
because its PGM models the flow's ECMP path *set*.  The catch is
symmetry: in a perfect Clos, links that participate in exactly the same
ECMP path sets are observationally indistinguishable.  This example
computes those equivalence classes, shows the theoretical precision
ceiling they impose, and demonstrates how a little irregularity (omitted
links) breaks the classes and lifts Flock (P)'s accuracy.

Run:  python examples/passive_only_irregular.py
"""

import numpy as np

from repro import EcmpRouting, SilentLinkDrops, three_tier_clos
from repro.eval.experiments import flock_setup
from repro.eval.harness import evaluate
from repro.eval.scenarios import make_trace_batch
from repro.topology import (
    link_equivalence_classes,
    omit_random_links,
    theoretical_max_precision,
)


def run_at(base_topo, fraction, seed=31, n_traces=4):
    rng = np.random.default_rng(seed + int(fraction * 1000))
    topo, removed = omit_random_links(base_topo, fraction, rng)
    routing = EcmpRouting(topo)
    classes = link_equivalence_classes(topo, routing)
    sizes = sorted((len(g) for g in classes), reverse=True)

    scenarios = [
        SilentLinkDrops(n_failures=1, min_rate=5e-3, max_rate=1e-2)
        for _ in range(n_traces)
    ]
    traces = make_trace_batch(
        topo, routing, scenarios, base_seed=seed, n_passive=6000, n_probes=0
    )
    summary = evaluate(flock_setup("P"), traces)
    ceiling = float(np.mean([
        theoretical_max_precision(classes, t.ground_truth.failed_links)
        for t in traces
    ]))
    return {
        "omitted": len(removed),
        "largest_class": sizes[0] if sizes else 0,
        "n_classes": len(classes),
        "precision": summary.accuracy.precision,
        "recall": summary.accuracy.recall,
        "ceiling": ceiling,
    }


def main():
    base = three_tier_clos(
        pods=4, tors_per_pod=4, aggs_per_pod=2,
        core_groups=2, cores_per_group=2, hosts_per_tor=3,
    )
    print(f"fabric: {base}  (passive telemetry only - no probes, no paths)")
    print(f"\n{'omitted':>8s} {'classes':>8s} {'largest':>8s} "
          f"{'precision':>9s} {'recall':>7s} {'ceiling':>8s}")
    for fraction in (0.0, 0.02, 0.05, 0.10, 0.20):
        row = run_at(base, fraction)
        print(f"{row['omitted']:8d} {row['n_classes']:8d} "
              f"{row['largest_class']:8d} {row['precision']:9.2f} "
              f"{row['recall']:7.2f} {row['ceiling']:8.2f}")
    print("\nirregularity breaks ECMP symmetry classes, and Flock (P) "
          "automatically exploits it - no other scheme applies here at all")


if __name__ == "__main__":
    main()
