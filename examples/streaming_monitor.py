#!/usr/bin/env python
"""Monitor a flapping link through the streaming localization service.

A link flap is the canonical streaming incident: the fault turns on
mid-stream, drops packets for a while, and clears.  A batch harness
averages the flap away; the :class:`~repro.eval.stream.StreamMonitor`
replays the trace as one-second chunks through a sliding
:class:`~repro.core.window.WindowedProblem` and re-localizes every
cycle with a warm-started kernel, so the incident shows up (and clears)
within a few cycles of wall clock.

Run:  PYTHONPATH=src python examples/streaming_monitor.py
"""

from repro.eval.experiments import standard_topology
from repro.eval.stream import StreamMonitor, incident_latencies
from repro.routing import EcmpRouting
from repro.simulation import LinkFlap, replay_stream

CYCLES = 16
ONSET, CLEAR = 4, 11


def main():
    topo = standard_topology("ci")
    routing = EcmpRouting(topo)
    scenario = LinkFlap(n_links=1)

    # The incident is live for chunks [ONSET, CLEAR); outside that the
    # same links run under their healthy twin, so the window straddles
    # onset and clearance with homogeneous telemetry.
    chunks = replay_stream(
        topo, routing, scenario, seed=23, n_chunks=CYCLES,
        flows_per_chunk=600, probes_per_chunk=120,
        onset_chunk=ONSET, clear_chunk=CLEAR,
    )

    monitor = StreamMonitor(topo, scheme="flock", window=4, seed=23)
    print(f"streaming a link flap on the ci fabric ({topo.n_links} links): "
          f"{CYCLES} cycles, incident live for chunks [{ONSET}, {CLEAR})")

    reports = monitor.run(chunks)
    for r in reports:
        names = sorted(topo.component_name(c) for c in r.prediction.components)
        mark = "*" if r.detected else (" " if not r.truth else "!")
        ms = (r.build_seconds + r.localize_seconds) * 1e3
        print(f"  cycle {r.cycle:>2} [{mark}] window={r.grouped_flows:>5} "
              f"churn={r.churn} {ms:6.1f}ms  "
              f"predicted: {', '.join(names) if names else '-'}")

    print()
    for inc in incident_latencies(reports):
        if inc["detected_cycle"] is None:
            print(f"incident @ cycle {inc['onset_cycle']}: NOT detected")
            continue
        print(f"incident @ cycle {inc['onset_cycle']}: detected at cycle "
              f"{inc['detected_cycle']} (latency {inc['latency_cycles']} "
              f"cycle(s), {inc['latency_seconds']:.1f}s of stream time), "
              f"cleared at cycle {inc['clear_cycle']}")

    # The hypothesis should also *clear* once the flap stops and the
    # faulty chunks expire from the window.
    tail = [r for r in reports if r.cycle >= CLEAR + monitor.window]
    if tail and not any(r.prediction.components for r in tail):
        print("hypothesis cleared after the flap expired from the window")


if __name__ == "__main__":
    main()
