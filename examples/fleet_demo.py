#!/usr/bin/env python
"""Run a two-worker evaluation fleet against a SQLite work-unit broker.

The fleet is the queue-backed flavor of distributed evaluation: a
submitter decomposes an experiment into work units (contiguous trace
ranges of each grid call) in a broker database, any number of worker
processes lease and execute units, and a collector folds the stored
wire results into the full :class:`~repro.eval.spec.ExperimentResult` -
bit-identical in metrics to a serial ``repro-flock run``.  Unlike
``--shards N --shard-index I``, nobody pre-assigns ranges: workers can
start late, die, or be added mid-run, and the broker's lease lifecycle
keeps every unit owned by exactly one live worker at a time.

This demo submits fig2 at the tiny preset, drains it with two worker
OS processes running concurrently, prints the broker's lifecycle
counts, and verifies the collected metrics against a serial run.

Run:  PYTHONPATH=src python examples/fleet_demo.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

from repro.eval import fleet
from repro.eval.spec import run_experiment

EXPERIMENT, PRESET = "fig2", "tiny"


def main():
    with tempfile.TemporaryDirectory() as tmp:
        broker = Path(tmp) / "fleet.db"

        report = fleet.submit(
            broker, EXPERIMENT, preset=PRESET, unit_traces=2,
            lease_seconds=60.0,
        )
        print(f"submitted {report.experiment} ({report.preset}): "
              f"{report.n_units} work unit(s) over {report.n_calls} "
              f"grid call(s)")

        # Two workers race for units; each could equally run on another
        # machine sharing the broker file.
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "fleet", "work",
                 str(broker), "--worker-id", f"demo-{i}"],
            )
            for i in range(2)
        ]
        for proc in workers:
            proc.wait()
            if proc.returncode != 0:
                raise SystemExit(f"worker exited with {proc.returncode}")

        counts = fleet.status(broker)["counts"]
        print(f"broker after drain: " +
              ", ".join(f"{v} {k}" for k, v in counts.items()))

        result = fleet.collect(broker)
        serial = run_experiment(EXPERIMENT, preset=PRESET)
        assert result.rows == serial.rows, "fleet result diverged from serial"
        print(f"collected {len(result.rows)} row(s); "
              "metrics bit-identical to the serial run")


if __name__ == "__main__":
    main()
